package engine_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vdm/internal/engine"
	"vdm/internal/exec"
)

// Query lifecycle governance battery: every pause point, in serial and
// parallel mode, pinned by a test hook and then cancelled, timed out,
// or panicked — asserting typed errors, prompt unwinding, zero
// goroutine leaks, and that the engine stays fully usable afterwards.
// Run with -race: the cancellation paths cross worker goroutines.

// govPoints maps each executor pause point to a query that reaches it
// on the TPC-H fixture.
var govPoints = []struct {
	point string
	query string
}{
	{exec.PointScan, `select o_orderkey, o_totalprice from orders`},
	{exec.PointHashBuild, `select o.o_orderkey, c.c_name from orders o inner join customer c on o.o_custkey = c.c_custkey`},
	{exec.PointGroupMerge, `select o_orderstatus, count(*) from orders group by o_orderstatus`},
	{exec.PointTopK, `select o_orderkey from orders order by o_totalprice desc limit 5`},
	{exec.PointSort, `select o_orderkey from orders order by o_totalprice desc`},
}

func govModes() []struct {
	name string
	opts engine.Options
} {
	return []struct {
		name string
		opts engine.Options
	}{
		{"serial", engine.Options{Parallelism: 1}},
		{"parallel", engine.Options{Parallelism: 4, MorselSize: 7}},
	}
}

// pin installs hooks that block the first arrival at the given point
// until the query's context dies or release is closed. It returns the
// channel closed on first arrival and the release closer.
func pin(e *engine.Engine, point string) (entered chan struct{}, release func()) {
	entered = make(chan struct{})
	rel := make(chan struct{})
	var once sync.Once
	e.SetExecHooks(&exec.Hooks{OnPoint: func(ctx context.Context, p string) error {
		if p != point {
			return nil
		}
		once.Do(func() { close(entered) })
		select {
		case <-ctx.Done():
		case <-rel:
		}
		return nil
	}})
	var relOnce sync.Once
	return entered, func() { relOnce.Do(func() { close(rel) }) }
}

// waitGoroutines waits for the goroutine count to return to (near) the
// baseline, failing the test if workers leaked.
func waitGoroutines(t *testing.T, label string, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: goroutine leak: %d running, baseline %d", label, n, base)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// verifyHealthy asserts the engine still answers correctly after a
// governance kill.
func verifyHealthy(t *testing.T, e *engine.Engine, label string) {
	t.Helper()
	res, err := e.Query(`select count(*) from orders where o_orderkey >= 0`)
	if err != nil {
		t.Fatalf("%s: engine unhealthy after kill: %v", label, err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() <= 0 {
		t.Fatalf("%s: bad post-kill result: %+v", label, res.Rows)
	}
}

func TestGovernanceCancelAtEveryPausePoint(t *testing.T) {
	e := equivEngine(t)
	for _, mode := range govModes() {
		e.SetOptions(mode.opts)
		for _, pp := range govPoints {
			label := mode.name + "/" + pp.point
			t.Run(label, func(t *testing.T) {
				base := runtime.NumGoroutine()
				entered, release := pin(e, pp.point)
				defer func() {
					release()
					e.SetExecHooks(nil)
				}()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				errCh := make(chan error, 1)
				go func() {
					_, err := e.QueryContext(ctx, pp.query)
					errCh <- err
				}()
				select {
				case <-entered:
				case <-time.After(5 * time.Second):
					t.Fatalf("%s: query never reached pause point", label)
				}
				start := time.Now()
				cancel()
				var err error
				select {
				case err = <-errCh:
				case <-time.After(5 * time.Second):
					t.Fatalf("%s: cancelled query never returned", label)
				}
				if d := time.Since(start); d > 50*time.Millisecond {
					t.Errorf("%s: cancellation took %v, want <= 50ms", label, d)
				}
				if !errors.Is(err, engine.ErrCancelled) {
					t.Fatalf("%s: want ErrCancelled, got %v", label, err)
				}
				release()
				e.SetExecHooks(nil)
				// The extra goroutine running the query has sent its error,
				// so baseline+0 is reachable once workers drain.
				waitGoroutines(t, label, base)
				verifyHealthy(t, e, label)
			})
		}
	}
	if v := metricValue(t, e, "engine.cancelled"); v < int64(len(govPoints)*len(govModes())) {
		t.Errorf("engine.cancelled = %d, want >= %d", v, len(govPoints)*len(govModes()))
	}
}

func TestGovernanceStatementTimeout(t *testing.T) {
	e := equivEngine(t)
	for _, mode := range govModes() {
		opts := mode.opts
		opts.StatementTimeout = 30 * time.Millisecond
		e.SetOptions(opts)
		t.Run(mode.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			entered, release := pin(e, exec.PointScan)
			defer func() {
				release()
				e.SetExecHooks(nil)
			}()
			errCh := make(chan error, 1)
			go func() {
				_, err := e.Query(`select o_orderkey from orders`)
				errCh <- err
			}()
			select {
			case <-entered:
			case <-time.After(5 * time.Second):
				t.Fatal("query never reached pause point")
			}
			var err error
			select {
			case err = <-errCh:
			case <-time.After(5 * time.Second):
				t.Fatal("timed-out query never returned")
			}
			if !errors.Is(err, engine.ErrTimeout) {
				t.Fatalf("want ErrTimeout, got %v", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("timeout error should wrap context.DeadlineExceeded, got %v", err)
			}
			release()
			e.SetExecHooks(nil)
			waitGoroutines(t, mode.name, base)
			e.SetOptions(mode.opts) // drop the timeout before the health check
			verifyHealthy(t, e, mode.name)
		})
	}
	if v := metricValue(t, e, "engine.timeouts"); v < 2 {
		t.Errorf("engine.timeouts = %d, want >= 2", v)
	}
}

func TestGovernanceMemoryBudget(t *testing.T) {
	e := equivEngine(t)
	for _, mode := range govModes() {
		opts := mode.opts
		opts.MemoryBudget = 256 << 10
		e.SetOptions(opts)
		t.Run(mode.name, func(t *testing.T) {
			// The oversized query and an in-budget query run concurrently:
			// budgets are per query, so the small one must not be starved
			// or killed by its neighbour blowing up.
			bigErr := make(chan error, 1)
			go func() {
				_, err := e.Query(`select a.l_orderkey, b.l_orderkey from lineitem a cross join lineitem b`)
				bigErr <- err
			}()
			smallErr := make(chan error, 1)
			go func() {
				_, err := e.Query(`select count(*) from orders`)
				smallErr <- err
			}()
			if err := <-smallErr; err != nil {
				t.Fatalf("in-budget query failed: %v", err)
			}
			err := <-bigErr
			if !errors.Is(err, engine.ErrMemoryBudget) {
				t.Fatalf("want ErrMemoryBudget, got %v", err)
			}
			verifyHealthy(t, e, mode.name)
		})
	}
	if v := metricValue(t, e, "engine.mem_budget_kills"); v < 2 {
		t.Errorf("engine.mem_budget_kills = %d, want >= 2", v)
	}
	if v := metricValue(t, e, "exec.peak_query_bytes"); v <= 0 {
		t.Errorf("exec.peak_query_bytes = %d, want > 0", v)
	}
}

func TestGovernancePanicIsolation(t *testing.T) {
	e := equivEngine(t)
	cases := []struct {
		name  string
		opts  engine.Options
		point string
		query string
	}{
		{"serial-hash-build", engine.Options{Parallelism: 1}, exec.PointHashBuild,
			`select o.o_orderkey, c.c_name from orders o inner join customer c on o.o_custkey = c.c_custkey`},
		{"parallel-scan-worker", engine.Options{Parallelism: 4, MorselSize: 7}, exec.PointScan,
			`select o_orderkey from orders`},
	}
	for _, tc := range cases {
		e.SetOptions(tc.opts)
		t.Run(tc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			point := tc.point
			e.SetExecHooks(&exec.Hooks{OnPoint: func(ctx context.Context, p string) error {
				if p == point {
					panic("governance test: injected fault at " + p)
				}
				return nil
			}})
			defer e.SetExecHooks(nil)
			before := metricValue(t, e, "engine.panics_recovered")
			_, err := e.Query(tc.query)
			if !errors.Is(err, engine.ErrInternal) {
				t.Fatalf("want ErrInternal, got %v", err)
			}
			if !strings.Contains(err.Error(), "injected fault") {
				t.Fatalf("panic message lost: %v", err)
			}
			if after := metricValue(t, e, "engine.panics_recovered"); after != before+1 {
				t.Fatalf("engine.panics_recovered = %d, want %d", after, before+1)
			}
			e.SetExecHooks(nil)
			waitGoroutines(t, tc.name, base)
			verifyHealthy(t, e, tc.name)
		})
	}
}

func TestGovernanceAdmissionControl(t *testing.T) {
	e := equivEngine(t)
	e.SetOptions(engine.Options{
		Parallelism:          1,
		MaxConcurrentQueries: 1,
		QueueTimeout:         50 * time.Millisecond,
	})
	entered, release := pin(e, exec.PointScan)
	defer func() {
		release()
		e.SetExecHooks(nil)
	}()

	// q1 takes the only slot and parks at the scan pause point.
	q1Err := make(chan error, 1)
	go func() {
		_, err := e.Query(`select o_orderkey from orders`)
		q1Err <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("q1 never reached pause point")
	}

	// q2 queues behind it and must be rejected with the typed error
	// when QueueTimeout expires.
	_, err := e.Query(`select count(*) from customer`)
	if !errors.Is(err, engine.ErrAdmissionTimeout) {
		t.Fatalf("want ErrAdmissionTimeout, got %v", err)
	}
	if v := metricValue(t, e, "engine.admission_waits"); v < 1 {
		t.Errorf("engine.admission_waits = %d, want >= 1", v)
	}
	if v := metricValue(t, e, "engine.admission_rejects"); v < 1 {
		t.Errorf("engine.admission_rejects = %d, want >= 1", v)
	}

	// Releasing q1 frees the slot; it finishes cleanly and the next
	// query admits immediately.
	release()
	if err := <-q1Err; err != nil {
		t.Fatalf("q1 failed: %v", err)
	}
	e.SetExecHooks(nil)
	verifyHealthy(t, e, "post-admission")
}

// TestGovernanceCancelDuringVacuum pins a query mid-scan, runs a vacuum
// pass concurrently (exercising the read-lease / governance interplay),
// then cancels the query: the vacuum must finish, the cancel must be
// typed and prompt, and no goroutine may leak.
func TestGovernanceCancelDuringVacuum(t *testing.T) {
	e := equivEngine(t)
	e.SetOptions(engine.Options{Parallelism: 4, MorselSize: 7})
	// Create dead versions for the vacuum to chew on.
	if err := e.Exec(`create table churn_gov (id bigint primary key)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := e.Exec(fmt.Sprintf("insert into churn_gov values (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Exec(`delete from churn_gov where id < 40`); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	entered, release := pin(e, exec.PointScan)
	defer func() {
		release()
		e.SetExecHooks(nil)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := e.QueryContext(ctx, `select o_orderkey from orders`)
		errCh <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached pause point")
	}
	// Vacuum runs while the reader is pinned; its read-lease watermark
	// protects the pinned snapshot, so this must not block or corrupt.
	if _, err := e.DB().Vacuum(); err != nil {
		t.Fatalf("concurrent vacuum: %v", err)
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, engine.ErrCancelled) {
			t.Fatalf("want ErrCancelled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query never returned")
	}
	release()
	e.SetExecHooks(nil)
	waitGoroutines(t, "vacuum-concurrent", base)
	verifyHealthy(t, e, "vacuum-concurrent")
}
