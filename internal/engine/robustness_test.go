package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vdm/internal/sql"
)

// Robustness: no SQL input — malformed, mistyped, or abusive — may panic
// the engine; everything surfaces as an error or a correct result.
func TestNoPanicOnHostileInputs(t *testing.T) {
	e := newTestEngine(t)
	inputs := []string{
		// type abuse in scalar functions
		`select upper(id) from emp`,
		`select length(salary) from emp`,
		`select substr(id, 1) from emp`,
		`select mod(name, 2) from emp`,
		`select floor(name) from emp`,
		`select abs(name) from emp`,
		`select round(name, 2) from emp`,
		`select to_decimal(name) from emp`,
		// type abuse in operators
		`select name + 1 from emp`,
		`select salary || 1 from emp`, // allowed: || stringifies
		`select id from emp where name > 5`,
		`select id from emp where salary and true`,
		// arithmetic edge cases
		`select 1 / 0`,
		`select mod(1, 0)`,
		`select id / (id - id) from emp`,
		// structure abuse
		`select * from emp order by 99`,
		`select * from emp limit name`,
		`select count(*) from emp group by`,
		`select a from (select 1, 2) x`,
		`select`,
		``,
		`;;;`,
		`select * from emp emp2 emp3`,
		`select (select id from emp) from dept`,
		// deep nesting
		`select * from (select * from (select * from (select * from emp) a) b) c`,
		// unicode and quoting
		`select '日本語' from emp`,
		`select "nonexistent column" from emp`,
		`select 'unterminated`,
	}
	for _, q := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("query %q panicked: %v", q, r)
				}
			}()
			_, _ = e.Query(q)
		}()
	}
}

// Every error message should be prefixed with its originating layer so
// users can tell a parse error from a bind or execution error.
func TestErrorMessagesArePrefixed(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		q      string
		prefix string
	}{
		{`select * frm emp`, "sql:"},
		{`select nope from emp`, "bind:"},
		{`select 1/0 from emp`, "exec:"},
	}
	for _, c := range cases {
		_, err := e.Query(c.q)
		if err == nil {
			t.Errorf("query %q should fail", c.q)
			continue
		}
		if !strings.Contains(err.Error(), c.prefix) {
			t.Errorf("query %q: error %q lacks prefix %q", c.q, err, c.prefix)
		}
	}
}

func TestDDLErrorsDoNotCorruptState(t *testing.T) {
	e := newTestEngine(t)
	// A failing view creation must not leave a half-registered view.
	if err := e.Exec(`create view broken as select missing_col from emp`); err == nil {
		t.Fatal("broken view should fail to deploy")
	}
	if _, ok := e.Catalog().View("broken"); ok {
		t.Fatal("failed view left in catalog")
	}
	// The engine still works.
	r := mustQuery(t, e, `select count(*) from emp`)
	if r.Rows[0][0].Int() != 4 {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
}

// Resource-abuse queries: each one would monopolize memory, stack, or
// time without governance; with the matching limit set it must fail
// with the typed, errors.Is-matchable error and leave the engine
// healthy.
func TestResourceAbuseFailsTyped(t *testing.T) {
	e := newTestEngine(t)
	// Bulk rows so a self cross join is genuinely oversized: 2000 rows
	// squared is 4M output rows against a 64 KiB budget.
	var sb strings.Builder
	sb.WriteString("insert into big values ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i*3)
	}
	mustExec(t, e,
		`create table big (id bigint primary key, v bigint)`,
		sb.String(),
	)

	t.Run("cross-join-memory-budget", func(t *testing.T) {
		opts := e.Options()
		opts.MemoryBudget = 64 << 10
		e.SetOptions(opts)
		defer func() {
			opts.MemoryBudget = 0
			e.SetOptions(opts)
		}()
		_, err := e.Query(`select a.id, b.id from big a cross join big b`)
		if !errors.Is(err, ErrMemoryBudget) {
			t.Fatalf("want ErrMemoryBudget, got %v", err)
		}
	})

	t.Run("deep-nesting-parser-limit", func(t *testing.T) {
		q := "select " + strings.Repeat("(", 10000) + "1" + strings.Repeat(")", 10000)
		_, err := e.Query(q)
		if !errors.Is(err, sql.ErrTooDeep) {
			t.Fatalf("want sql.ErrTooDeep, got %v", err)
		}
	})

	t.Run("tiny-statement-timeout", func(t *testing.T) {
		opts := e.Options()
		opts.StatementTimeout = time.Nanosecond
		e.SetOptions(opts)
		defer func() {
			opts.StatementTimeout = 0
			e.SetOptions(opts)
		}()
		_, err := e.Query(`select count(*) from big a cross join big b`)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("want ErrTimeout, got %v", err)
		}
	})

	// The engine survives every abuse above.
	r := mustQuery(t, e, `select count(*) from big`)
	if r.Rows[0][0].Int() != 2000 {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
}
