package engine_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vdm/internal/core"
	"vdm/internal/decimal"
	"vdm/internal/engine"
	"vdm/internal/experiments"
	"vdm/internal/s4"
	"vdm/internal/tpch"
	"vdm/internal/types"
)

// TestVectorTopKBoundarySweep sweeps LIMIT/OFFSET across the boundary
// cases the bounded top-k heap must get right: empty page (limit 0),
// single row, one either side of the page size, exactly the input
// cardinality, and past the end of the input. Every leg must match the
// row-serial reference exactly — same rows, same order.
func TestVectorTopKBoundarySweep(t *testing.T) {
	e := equivEngine(t)
	if err := e.MergeAllDeltas(); err != nil {
		t.Fatal(err)
	}

	rowSerial := engine.Options{Parallelism: 1, DisableVectorize: true}

	rows := runMeta(t, e, `select count(*) from orders`, rowSerial, core.ProfileHANA)
	n := int(rows.Rows[0][0].Int())
	if n < 12 {
		t.Fatalf("orders too small for the sweep: %d rows", n)
	}

	const page = 10
	limits := []int{0, 1, page - 1, page, page + 1, n - 1, n, n + 1}
	offsets := []int{0, 1, page, n}

	// o_totalprice has ties at TPCH tiny scale and o_orderdate is
	// nullable, so the sweep also exercises tie-breaking and NULL sort
	// keys at every page edge.
	shapes := []experiments.NamedQuery{
		{Name: "price-desc", SQL: `select o_orderkey, o_totalprice from orders order by o_totalprice desc, o_orderkey`},
		{Name: "date-nulls", SQL: `select o_orderkey, o_orderdate from orders order by o_orderdate, o_orderkey`},
		{Name: "status-ties", SQL: `select o_orderkey, o_orderstatus from orders order by o_orderstatus, o_orderkey desc`},
	}

	for _, shape := range shapes {
		for _, limit := range limits {
			for _, offset := range offsets {
				q := fmt.Sprintf("%s limit %d offset %d", shape.SQL, limit, offset)
				label := fmt.Sprintf("%s/limit=%d/offset=%d", shape.Name, limit, offset)
				ref := runMeta(t, e, q, rowSerial, core.ProfileHANA)
				if want := max(0, min(limit, n-offset)); len(ref.Rows) != want {
					t.Fatalf("%s: reference returned %d rows, want %d", label, len(ref.Rows), want)
				}
				for _, leg := range vecLegs() {
					got := runMeta(t, e, q, leg.opts, core.ProfileHANA)
					requireSameRows(t, label+"/"+leg.name, q, ref, got)
				}
			}
		}
	}
}

// TestVecFallbackZeroOnFigureQueries is the CI guard for the paper's
// two benchmark anchors: the Figure 6 LimitAJ paging query and the
// Figure 4 count(*) over JournalEntryItemBrowser must execute fully
// vectorized — every exec.vec_fallbacks.* counter stays flat while
// exec.vec_pipelines advances.
func TestVecFallbackZeroOnFigureQueries(t *testing.T) {
	fallbackNames := []string{
		"exec.vec_fallbacks.expression",
		"exec.vec_fallbacks.or",
		"exec.vec_fallbacks.sort",
		"exec.vec_fallbacks.union",
		"exec.vec_fallbacks.distinct",
		"exec.vec_fallbacks.analyze_parallel",
	}

	snapshot := func(e *engine.Engine) map[string]int64 {
		out := make(map[string]int64, len(fallbackNames))
		for _, name := range fallbackNames {
			out[name] = metricValue(t, e, name)
		}
		return out
	}

	check := func(name string, e *engine.Engine, sql string) {
		t.Helper()
		before := snapshot(e)
		pipesBefore := metricValue(t, e, "exec.vec_pipelines")
		if _, err := e.Query(sql); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		after := snapshot(e)
		for _, metric := range fallbackNames {
			if d := after[metric] - before[metric]; d != 0 {
				t.Errorf("%s: %s moved by %d; query did not stay vectorized", name, metric, d)
			}
		}
		if pipesAfter := metricValue(t, e, "exec.vec_pipelines"); pipesAfter <= pipesBefore {
			t.Errorf("%s: exec.vec_pipelines did not advance (%d -> %d)", name, pipesBefore, pipesAfter)
		}
	}

	t.Run("fig6-limit-aj", func(t *testing.T) {
		e, err := experiments.NewTPCHEngine(tpch.TinyScale())
		if err != nil {
			t.Fatal(err)
		}
		check("Fig. 6", e, experiments.LimitAJQuery().SQL)
	})

	t.Run("fig4-count-star", func(t *testing.T) {
		e, err := experiments.NewS4Engine(s4.TinySize(), s4.Fig14Tiny())
		if err != nil {
			t.Fatal(err)
		}
		check("Fig. 4", e, `select count(*) from JournalEntryItemBrowser`)
	})
}

// TestVecFallbackExplainReasons checks the per-operator observability
// surface: a declining plan node carries its decline reason both in the
// exec.vec_fallbacks.<reason> counter and as a vec_fallback= annotation
// in EXPLAIN ANALYZE output.
func TestVecFallbackExplainReasons(t *testing.T) {
	e := equivEngine(t)
	if err := e.MergeAllDeltas(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		sql    string
		metric string
	}{
		{"expression", `select l_orderkey, l_extendedprice / l_quantity from lineitem`, "exec.vec_fallbacks.expression"},
		{"sort", `select o_orderkey from orders order by o_totalprice desc, o_orderkey`, "exec.vec_fallbacks.sort"},
		{"distinct", `select count(distinct o_custkey) from orders`, "exec.vec_fallbacks.distinct"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := metricValue(t, e, tc.metric)
			text, err := e.ExplainAnalyze("", tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			if after := metricValue(t, e, tc.metric); after <= before {
				t.Errorf("%s did not advance (%d -> %d)", tc.metric, before, after)
			}
			want := "vec_fallback=" + tc.name
			if !strings.Contains(text, want) {
				t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, text)
			}
		})
	}
}

// TestVecFallbackZeroUnderChurn runs the Fig. 6 LimitAJ paging query
// repeatedly while a concurrent writer churns the orders table
// (inserts + deletes driving delta growth, auto-merges, and vacuums):
// the vectorized pipeline must keep running end to end — every
// exec.vec_fallbacks.* counter stays flat and exec.vec_pipelines keeps
// advancing — whatever fragment layout the maintenance loop leaves
// behind.
func TestVecFallbackZeroUnderChurn(t *testing.T) {
	e, err := experiments.NewTPCHEngine(tpch.TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	e.SetOptions(engine.Options{
		AutoMerge:      true,
		MergeThreshold: 256,
		GCInterval:     5 * time.Millisecond,
	})
	defer e.Close()

	db := e.DB()
	orders, ok := db.Table("orders")
	if !ok {
		t.Fatal("orders table missing")
	}
	pk := orders.PrimaryKeyIndex()
	if pk < 0 {
		t.Fatal("orders has no primary key")
	}

	done := make(chan struct{})
	churned := make(chan error, 1)
	go func() {
		defer close(churned)
		const base = int64(10_000_000)
		next := base
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			// Insert a small batch, then delete it again: the delta keeps
			// filling, auto-merge keeps folding it, vacuum keeps reaping
			// the dead versions.
			tx := db.Begin()
			for j := 0; j < 64; j++ {
				next++
				row := types.Row{
					types.NewInt(next),
					types.NewInt(1),
					types.NewString("O"),
					types.NewDecimal(decimal.New(int64(1000+j), 2)),
					types.NewDate(9000),
					types.NewString("1-URGENT"),
				}
				if err := tx.Insert(orders, row); err != nil {
					tx.Rollback()
					churned <- err
					return
				}
			}
			if err := tx.Commit(); err != nil {
				churned <- err
				return
			}
			tx = db.Begin()
			for id := next - 63; id <= next; id++ {
				snap := tx.Snapshot(orders)
				pos, ok := snap.LookupUnique(pk, types.Row{types.NewInt(id)})
				if !ok {
					tx.Rollback()
					churned <- fmt.Errorf("churn row %d vanished", id)
					return
				}
				if err := tx.DeleteAt(snap, pos); err != nil {
					tx.Rollback()
					churned <- err
					return
				}
			}
			if err := tx.Commit(); err != nil {
				churned <- err
				return
			}
			if i%4 == 3 {
				_ = orders.MergeDelta()
				_, _ = db.Vacuum()
			}
		}
	}()

	fallbackNames := []string{
		"exec.vec_fallbacks.expression",
		"exec.vec_fallbacks.or",
		"exec.vec_fallbacks.sort",
		"exec.vec_fallbacks.union",
		"exec.vec_fallbacks.distinct",
		"exec.vec_fallbacks.analyze_parallel",
	}
	before := make(map[string]int64, len(fallbackNames))
	for _, name := range fallbackNames {
		before[name] = metricValue(t, e, name)
	}
	pipesBefore := metricValue(t, e, "exec.vec_pipelines")

	sql := experiments.LimitAJQuery().SQL
	for i := 0; i < 25; i++ {
		if _, err := e.Query(sql); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}

	close(done)
	if err := <-churned; err != nil {
		t.Fatalf("churn writer: %v", err)
	}

	for _, name := range fallbackNames {
		if d := metricValue(t, e, name) - before[name]; d != 0 {
			t.Errorf("%s moved by %d under churn; paging query fell back", name, d)
		}
	}
	if pipesAfter := metricValue(t, e, "exec.vec_pipelines"); pipesAfter < pipesBefore+25 {
		t.Errorf("exec.vec_pipelines advanced only %d in 25 queries", pipesAfter-pipesBefore)
	}
}
