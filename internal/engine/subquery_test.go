package engine

import (
	"strings"
	"testing"
)

func subqueryEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	if err := e.ExecScript(`
		create table c (id bigint primary key, name varchar not null, tier bigint);
		create table o (id bigint primary key, cid bigint, total bigint);
		insert into c values (1,'a',1), (2,'b',2), (3,'c',1), (4,'d',3);
		insert into o values (10,1,100), (11,1,50), (12,2,75), (13,null,20);
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func names(t *testing.T, e *Engine, q string) string {
	t.Helper()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	var out []string
	for _, r := range res.Rows {
		out = append(out, r[0].Str())
	}
	return strings.Join(out, ",")
}

func TestExistsCorrelated(t *testing.T) {
	e := subqueryEngine(t)
	got := names(t, e, `select name from c where exists (select 1 from o where o.cid = c.id) order by name`)
	if got != "a,b" {
		t.Fatalf("EXISTS = %q, want a,b", got)
	}
	got = names(t, e, `select name from c where not exists (select 1 from o where o.cid = c.id) order by name`)
	if got != "c,d" {
		t.Fatalf("NOT EXISTS = %q", got)
	}
}

func TestExistsWithExtraSubqueryFilter(t *testing.T) {
	e := subqueryEngine(t)
	got := names(t, e, `select name from c where exists (select 1 from o where o.cid = c.id and o.total > 80) order by name`)
	if got != "a" {
		t.Fatalf("filtered EXISTS = %q, want a", got)
	}
	// Combined with a plain predicate.
	got = names(t, e, `select name from c where tier = 1 and exists (select 1 from o where o.cid = c.id)`)
	if got != "a" {
		t.Fatalf("EXISTS + plain = %q", got)
	}
}

func TestInSubquery(t *testing.T) {
	e := subqueryEngine(t)
	got := names(t, e, `select name from c where id in (select cid from o where total >= 50) order by name`)
	if got != "a,b" {
		t.Fatalf("IN = %q", got)
	}
	// Uncorrelated EXISTS: non-empty subquery keeps everything.
	got = names(t, e, `select name from c where exists (select 1 from o) order by name`)
	if got != "a,b,c,d" {
		t.Fatalf("uncorrelated EXISTS = %q", got)
	}
}

func TestNotInNullSemantics(t *testing.T) {
	e := subqueryEngine(t)
	// The subquery result contains a NULL (o.cid of order 13):
	// NOT IN must return NO rows — the infamous three-valued trap.
	got := names(t, e, `select name from c where id not in (select cid from o)`)
	if got != "" {
		t.Fatalf("NOT IN with NULLs = %q, want empty", got)
	}
	// Excluding NULLs restores the intuitive behavior.
	got = names(t, e, `select name from c where id not in (select cid from o where cid is not null) order by name`)
	if got != "c,d" {
		t.Fatalf("NOT IN sans NULLs = %q", got)
	}
	// NOT IN over an empty subquery keeps all rows.
	got = names(t, e, `select name from c where id not in (select cid from o where total > 99999) order by name`)
	if got != "a,b,c,d" {
		t.Fatalf("NOT IN empty = %q", got)
	}
}

func TestSubqueryPlanShapes(t *testing.T) {
	e := subqueryEngine(t)
	ex, err := e.Explain("", `select name from c where exists (select 1 from o where o.cid = c.id)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "SemiJoin") {
		t.Fatalf("expected SemiJoin:\n%s", ex)
	}
	ex, err = e.Explain("", `select name from c where id not in (select cid from o)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex, "AntiJoin") {
		t.Fatalf("expected AntiJoin:\n%s", ex)
	}
}

func TestSubqueryErrors(t *testing.T) {
	e := subqueryEngine(t)
	cases := []string{
		// EXISTS nested under OR is unsupported.
		`select name from c where tier = 1 or exists (select 1 from o where o.cid = c.id)`,
		// IN subquery with two columns.
		`select name from c where id in (select id, cid from o)`,
		// Correlation in the select list of the subquery.
		`select name from c where exists (select c.id from o)`,
		// EXISTS in the select list.
		`select exists (select 1 from o) from c`,
	}
	for _, q := range cases {
		if _, err := e.Query(q); err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestSubqueryInsideViewOptimizes(t *testing.T) {
	e := subqueryEngine(t)
	mustExec(t, e, `
		create view active_customers as
		select id, name, tier from c
		where exists (select 1 from o where o.cid = c.id)`)
	res, err := e.Query(`select name from active_customers order by name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Semi joins preserve keys: a distinct over the view's key column is
	// eliminated.
	st, err := e.PlanStats("", `select distinct id from active_customers`, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Distincts != 0 {
		t.Fatalf("distinct over semi-joined key not eliminated: %s", st)
	}
	// And an unused augmentation join ABOVE a semi join is still removed.
	mustExec(t, e, `
		create view wide_active as
		select a.id, a.name, x.total
		from active_customers a
		left outer join o x on a.id = x.id`)
	st, err = e.PlanStats("", `select name from wide_active`, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Joins != 1 { // the semi join stays, the AJ goes
		ex, _ := e.Explain("", `select name from wide_active`)
		t.Fatalf("joins = %d, want 1\n%s", st.Joins, ex)
	}
}
