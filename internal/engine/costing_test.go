package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// bulkInts inserts n rows {k, "pad<k>"} into a (k bigint, pad varchar)
// table through the storage layer — one commit, so at most one stats
// epoch bump.
func bulkInts(t *testing.T, e *Engine, table string, from, n int) {
	t.Helper()
	rows := make([]types.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, types.Row{
			types.NewInt(int64(from + i)),
			types.NewString(fmt.Sprintf("pad%d", from+i)),
		})
	}
	if err := e.db.InsertRows(table, rows); err != nil {
		t.Fatal(err)
	}
}

// skewedEngine builds a 5-row probe table and a 2000-row build table
// (probe keys repeat through the big table, so the join has matches).
func skewedEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mustExec(t, e,
		`create table probe (k bigint primary key, pad varchar)`,
		`create table big (k bigint, pad varchar)`)
	bulkInts(t, e, "probe", 0, 5)
	rows := make([]types.Row, 0, 2000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i % 5)), types.NewString("x")})
	}
	if err := e.db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	return e
}

func findJoinNode(n plan.Node) *plan.Join {
	if j, ok := n.(*plan.Join); ok {
		return j
	}
	for _, c := range n.Inputs() {
		if j := findJoinNode(c); j != nil {
			return j
		}
	}
	return nil
}

// TestCostBasedBuildSide: with the 5-row table on the left of a join
// against 2000 rows, the cost pass must flag BuildLeft, the executor
// must build the 5-row hash table, and the observability surface must
// show the decision and its estimates.
func TestCostBasedBuildSide(t *testing.T) {
	e := skewedEngine(t)
	q := `select count(*) from probe p inner join big b on p.k = b.k`

	tr, err := e.TraceQuery("", q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Fired("cost-build-side") {
		t.Fatalf("cost-build-side did not fire:\n%s", tr)
	}

	out, err := e.Explain("", q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "est_rows=") {
		t.Fatalf("EXPLAIN missing est_rows annotations:\n%s", out)
	}

	az, err := e.ExplainAnalyze("", q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(az, "build_rows=5") {
		t.Fatalf("hash join did not build on the 5-row side:\n%s", az)
	}
	if !strings.Contains(az, "q_err=") {
		t.Fatalf("EXPLAIN ANALYZE missing q-error annotations:\n%s", az)
	}

	// Same answer with costing off, and no estimate annotations.
	want := mustQuery(t, e, q)
	e.EnableCosting(false)
	got := mustQuery(t, e, q)
	if want.Rows[0][0].Int() != got.Rows[0][0].Int() {
		t.Fatalf("costing changed the answer: %v vs %v", want.Rows[0], got.Rows[0])
	}
	off, err := e.Explain("", q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "est_rows=") {
		t.Fatalf("est_rows rendered with costing off:\n%s", off)
	}
	azOff, err := e.ExplainAnalyze("", q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(azOff, "build_rows=2000") {
		t.Fatalf("with costing off the executor should fall back to building right:\n%s", azOff)
	}
}

// TestCostJoinReorder: a three-table inner-join chain written largest
// first must be reordered to start from the 10-row table, without
// changing the answer or the output column order.
func TestCostJoinReorder(t *testing.T) {
	e := New()
	mustExec(t, e,
		`create table fat (k bigint primary key, pad varchar)`,
		`create table mid (k bigint primary key, pad varchar)`,
		`create table thin (k bigint primary key, pad varchar)`)
	bulkInts(t, e, "fat", 0, 500)
	bulkInts(t, e, "mid", 0, 400)
	bulkInts(t, e, "thin", 0, 10)
	q := `select fat.k, mid.pad, thin.pad
	      from fat
	      inner join mid on fat.k = mid.k
	      inner join thin on mid.k = thin.k
	      order by fat.k`

	tr, err := e.TraceQuery("", q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Fired("cost-join-reorder") {
		t.Fatalf("cost-join-reorder did not fire:\n%s", tr)
	}

	want := mustQuery(t, e, q)
	e.EnableCosting(false)
	got := mustQuery(t, e, q)
	e.EnableCosting(true)
	if len(want.Rows) != 10 || len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows: costed=%d uncosted=%d, want 10", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for c := range want.Rows[i] {
			if want.Rows[i][c].Key() != got.Rows[i][c].Key() {
				t.Fatalf("row %d col %d differs after reorder: %v vs %v",
					i, c, want.Rows[i], got.Rows[i])
			}
		}
	}

	// The chain must not be reordered across a cardinality specification:
	// the spec binds to the join it was written on.
	qSpec := `select fat.k from fat
	          inner join mid on fat.k = mid.k
	          inner many to exact one join thin on mid.k = thin.k
	          order by fat.k limit 5`
	trSpec, err := e.TraceQuery("", qSpec)
	if err != nil {
		t.Fatal(err)
	}
	if trSpec.Fired("cost-join-reorder") {
		t.Fatalf("reorder crossed a cardinality-specified join:\n%s", trSpec)
	}
}

// TestPlanCacheStatsEpochFlipsBuildSide is the satellite-2 regression
// test: a cached plan's build side was chosen from bind-time row
// counts; after a bulk load crosses an order-of-magnitude bucket the
// stats epoch moves, the cache must drop the plan, and the replanned
// join must build on the other side.
func TestPlanCacheStatsEpochFlipsBuildSide(t *testing.T) {
	e := New()
	mustExec(t, e,
		`create table probe (k bigint primary key, pad varchar)`,
		`create table big (k bigint, pad varchar)`)
	bulkInts(t, e, "probe", 0, 5)
	rows := make([]types.Row, 0, 2000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i % 5)), types.NewString("x")})
	}
	if err := e.db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	e.EnablePlanCache(true)

	st, err := sql.Parse(`select count(*) from probe p inner join big b on p.k = b.k`)
	if err != nil {
		t.Fatal(err)
	}
	q := st.(*sql.Query)

	p1, err := e.planStatement(context.Background(), "", q)
	if err != nil {
		t.Fatal(err)
	}
	j1 := findJoinNode(p1.Root)
	if j1 == nil || !j1.BuildLeft {
		t.Fatalf("initial plan should build on the 5-row left side: %+v", j1)
	}
	p1b, err := e.planStatement(context.Background(), "", q)
	if err != nil {
		t.Fatal(err)
	}
	if p1b != p1 {
		t.Fatal("second lookup should hit the cache")
	}

	// Bulk-load probe from 5 to 50005 rows: the live row count crosses
	// several order-of-magnitude buckets in one commit, bumping the
	// coarse stats epoch.
	before := e.db.StatsEpoch()
	bulkInts(t, e, "probe", 5, 50000)
	if e.db.StatsEpoch() == before {
		t.Fatal("bulk load did not move the stats epoch")
	}

	p2, err := e.planStatement(context.Background(), "", q)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("stale plan served after the stats epoch moved")
	}
	j2 := findJoinNode(p2.Root)
	if j2 == nil || j2.BuildLeft {
		t.Fatalf("replanned join should build on the now-smaller right side: %+v", j2)
	}

	// Steady state: no further invalidation without data movement.
	p2b, err := e.planStatement(context.Background(), "", q)
	if err != nil {
		t.Fatal(err)
	}
	if p2b != p2 {
		t.Fatal("cache did not re-prime after the replan")
	}
}

// TestStatsRefreshMetricAndSnapshot covers the storage statistics
// surface end to end: RefreshStats fills distinct/min-max/null columns,
// the stats_refreshes counter moves (explicitly and via merge/vacuum
// piggybacks), and bind-time snapshots carry the numbers into plans.
func TestStatsRefreshMetricAndSnapshot(t *testing.T) {
	e := skewedEngine(t)
	metric := func() int64 {
		for _, m := range e.Metrics() {
			if m.Name == "storage.stats_refreshes" {
				return m.Value
			}
		}
		t.Fatal("storage.stats_refreshes not registered")
		return 0
	}

	before := metric()
	tbl, _ := e.db.Table("big")
	tbl.RefreshStats()
	if metric() != before+1 {
		t.Fatalf("explicit refresh did not move stats_refreshes: %d -> %d", before, metric())
	}
	st := tbl.StatsSnapshot()
	if st.Rows != 2000 {
		t.Fatalf("rows = %d, want 2000", st.Rows)
	}
	if st.Cols[0].Distinct != 5 {
		t.Fatalf("big.k distinct = %d, want 5", st.Cols[0].Distinct)
	}
	if !st.Cols[0].HasMinMax || st.Cols[0].Min.Int() != 0 || st.Cols[0].Max.Int() != 4 {
		t.Fatalf("big.k min/max = %+v, want [0, 4]", st.Cols[0])
	}

	// Merge and vacuum piggyback a refresh.
	atMerge := metric()
	if err := tbl.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if metric() <= atMerge {
		t.Fatal("delta merge did not refresh statistics")
	}
	mustExec(t, e, `delete from big where k = 4`)
	atVacuum := metric()
	if _, err := e.db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if metric() <= atVacuum {
		t.Fatal("vacuum did not refresh statistics")
	}
	st = tbl.StatsSnapshot()
	if st.Rows != 1600 || st.Cols[0].Distinct != 4 || st.Cols[0].Max.Int() != 3 {
		t.Fatalf("post-vacuum stats stale: %+v", st)
	}

	// The snapshot reaches plans through the binder.
	p, err := e.PlanQuery("", `select k from big`, false)
	if err != nil {
		t.Fatal(err)
	}
	var scan *plan.Scan
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			scan = s
		}
		for _, c := range n.Inputs() {
			walk(c)
		}
	}
	walk(p.Root)
	if scan == nil || scan.Info.Stats == nil || scan.Info.Stats.Rows != 1600 {
		t.Fatalf("bind-time stats snapshot missing or stale: %+v", scan)
	}
}
