package engine

import (
	"sync"

	"vdm/internal/metrics"
	"vdm/internal/plan"
)

// planCache memoizes optimized plans per (user, profile, SQL) — the
// "plan once, execute many" behaviour interactive VDM consumers rely
// on, and the context in which the paper weighs query-optimization time
// against execution time (§6.3). Any DDL (new tables, views, caches,
// DAC policies) invalidates the whole cache.
type planCache struct {
	mu      sync.RWMutex
	entries map[string]*plan.Plan
	// epoch is the storage schema epoch the cache was last validated
	// against; DDL that bypasses the engine (direct DB.CreateTable /
	// DB.DropTable) bumps the storage epoch and invalidates the cache on
	// the next lookup.
	epoch uint64
	// statsEpoch is the storage statistics epoch (coarse: bumped on
	// order-of-magnitude row-count crossings, delta merges, and vacuums).
	// Cached plans embed cost-based decisions — most importantly the
	// hash-join build side — made from bind-time statistics, so a moved
	// stats epoch invalidates the cache and forces a replan.
	statsEpoch uint64
	// hits/misses are atomic so lookups can record them under the read
	// lock (and so Engine.Metrics can read them concurrently).
	hits   metrics.Counter
	misses metrics.Counter
}

func newPlanCache() *planCache {
	return &planCache{entries: map[string]*plan.Plan{}}
}

func (c *planCache) get(key string) (*plan.Plan, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.entries[key]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	return p, ok
}

func (c *planCache) put(key string, p *plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = p
}

func (c *planCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

func (c *planCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*plan.Plan{}
}

// checkEpoch invalidates the cache when the storage schema epoch moved
// since the last lookup (DDL performed directly on the storage DB,
// which never goes through Engine.Exec's invalidation) or when the
// coarse statistics epoch moved (bulk data changes that can flip
// cost-based decisions baked into cached plans).
func (c *planCache) checkEpoch(epoch, statsEpoch uint64) {
	c.mu.RLock()
	ok := c.epoch == epoch && c.statsEpoch == statsEpoch
	c.mu.RUnlock()
	if ok {
		return
	}
	c.mu.Lock()
	if c.epoch != epoch || c.statsEpoch != statsEpoch {
		c.entries = map[string]*plan.Plan{}
		c.epoch = epoch
		c.statsEpoch = statsEpoch
	}
	c.mu.Unlock()
}

// EnablePlanCache switches plan caching on or off (off by default).
// Plans are keyed by user, optimizer profile, and SQL text; the cache is
// cleared by every DDL statement.
func (e *Engine) EnablePlanCache(on bool) {
	if on {
		c := newPlanCache()
		c.epoch = e.db.SchemaEpoch()
		c.statsEpoch = e.db.StatsEpoch()
		e.plans = c
	} else {
		e.plans = nil
	}
}

// PlanCacheStats returns (hits, misses) since the cache was enabled.
func (e *Engine) PlanCacheStats() (hits, misses int64) {
	if e.plans == nil {
		return 0, 0
	}
	return e.plans.hits.Value(), e.plans.misses.Value()
}
