package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"vdm/internal/types"
)

// HTAP integration tests: the paper's premise is transactional and
// analytical processing on one set of tables. These tests drive both
// paths through the engine simultaneously.

func TestExplainStatement(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Query(`explain select name from emp where dept_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, r := range res.Rows {
		text += r[0].Str() + "\n"
	}
	if !strings.Contains(text, "Scan emp") || !strings.Contains(text, "Filter") {
		t.Fatalf("explain output:\n%s", text)
	}
	res, err = e.Query(`explain raw select e.name from emp e left outer join dept d on e.dept_id = d.id`)
	if err != nil {
		t.Fatal(err)
	}
	raw := ""
	for _, r := range res.Rows {
		raw += r[0].Str() + "\n"
	}
	if !strings.Contains(raw, "LeftOuterJoin") {
		t.Fatalf("explain raw should keep the join:\n%s", raw)
	}
}

func TestConcurrentAnalyticsDuringWrites(t *testing.T) {
	e := New()
	mustExec(t, e,
		`create table tx_log (id bigint primary key, account bigint not null, amount decimal(12,2) not null)`,
	)
	// Seed a balanced ledger: every write below inserts a +x and a -x
	// pair in ONE transaction, so any consistent snapshot sums to zero.
	mustExec(t, e, `insert into tx_log values (1, 1, 100.00), (2, 2, -100.00)`)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 64)

	// Writers: transfer pairs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl, _ := e.DB().Table("tx_log")
		for i := 0; i < 200; i++ {
			tx := e.DB().Begin()
			id := int64(100 + 2*i)
			amt := types.NewDecimal(types.NewInt(int64(i + 1)).Decimal())
			neg := types.NewDecimal(types.NewInt(-int64(i + 1)).Decimal())
			if err := tx.Insert(tbl, types.Row{types.NewInt(id), types.NewInt(1), amt}); err != nil {
				errCh <- err
				return
			}
			if err := tx.Insert(tbl, types.Row{types.NewInt(id + 1), types.NewInt(2), neg}); err != nil {
				errCh <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Analysts: the sum over any snapshot must be zero — atomicity made
	// visible through MVCC.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Query(`select sum(amount) from tx_log`)
				if err != nil {
					errCh <- err
					return
				}
				if v := res.Rows[0][0]; v.IsNull() || !v.Decimal().IsZero() {
					errCh <- fmt.Errorf("inconsistent snapshot: sum = %s", v)
					return
				}
			}
		}()
	}
	// Wait for the writer, then stop analysts.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// The writer goroutine finishes on its own; signal analysts once the
	// expected row count is reached.
	for {
		res, err := e.Query(`select count(*) from tx_log`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() >= 402 {
			break
		}
		select {
		case err := <-errCh:
			t.Fatal(err)
		default:
		}
	}
	close(stop)
	<-done
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestAnalyticsOnViewSeesCommittedWrites(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `create view vtotals as select dept_id, sum(salary) total from emp group by dept_id`)
	before := mustQuery(t, e, `select count(*) from vtotals`)
	mustExec(t, e, `insert into emp values (30, 'new', 3, 10.00)`)
	after := mustQuery(t, e, `select count(*) from vtotals`)
	if after.Rows[0][0].Int() != before.Rows[0][0].Int()+1 {
		t.Fatalf("view does not reflect committed write: %v -> %v", before.Rows[0][0], after.Rows[0][0])
	}
}

func TestInsertColumnSubsetAndDefaults(t *testing.T) {
	e := New()
	mustExec(t, e,
		`create table t (a bigint primary key, b varchar, c decimal(8,2))`,
		`insert into t (a) values (1)`,
		`insert into t (c, a) values (2.50, 2)`,
	)
	res := mustQuery(t, e, `select a, b, c from t order by a`)
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Fatalf("unspecified columns should be NULL: %v", res.Rows[0])
	}
	if res.Rows[1][2].Decimal().String() != "2.50" {
		t.Fatalf("reordered insert: %v", res.Rows[1])
	}
	// Errors.
	if err := e.Exec(`insert into t (a, b) values (3)`); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if err := e.Exec(`insert into t (a, nope) values (3, 4)`); err == nil {
		t.Fatal("unknown column should fail")
	}
	if err := e.Exec(`insert into missing values (1)`); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestUpdateWithExpression(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `update emp set salary = salary * 2 where dept_id = 1`)
	res := mustQuery(t, e, `select salary from emp where id = 10`)
	if got := res.Rows[0][0].Decimal().String(); got != "200.0000" && got != "200.00" {
		t.Fatalf("salary = %s", got)
	}
}

func TestDeltaMergeDuringQueries(t *testing.T) {
	e := newTestEngine(t)
	tbl, _ := e.DB().Table("emp")
	before := mustQuery(t, e, `select count(*), sum(salary) from emp`)
	if err := tbl.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	after := mustQuery(t, e, `select count(*), sum(salary) from emp`)
	if before.Rows[0][0].Int() != after.Rows[0][0].Int() ||
		before.Rows[0][1].String() != after.Rows[0][1].String() {
		t.Fatalf("delta merge changed results: %v vs %v", before.Rows[0], after.Rows[0])
	}
}

// TestPlanReuseSeesNewData: a plan compiled once (plan-once,
// execute-many, as the benchmarks do) executes against the current
// committed snapshot each run.
func TestPlanReuseSeesNewData(t *testing.T) {
	e := newTestEngine(t)
	p, err := e.PlanQuery("", `select count(*) from emp`, true)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `insert into emp values (99, 'late', 1, 1.00)`)
	r2, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Rows[0][0].Int() != r1.Rows[0][0].Int()+1 {
		t.Fatalf("reused plan is stale: %v then %v", r1.Rows[0][0], r2.Rows[0][0])
	}
}

func TestExecScriptStopsOnError(t *testing.T) {
	e := New()
	err := e.ExecScript(`
		create table ok1 (a bigint);
		create table ok1 (a bigint);
		create table never (a bigint);
	`)
	if err == nil {
		t.Fatal("duplicate table should fail the script")
	}
	if _, ok := e.DB().Table("never"); ok {
		t.Fatal("statements after the failure must not run")
	}
}
