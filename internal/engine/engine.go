// Package engine is the public facade of the HTAP engine: it wires the
// SQL front end, catalog, binder, optimizer, executor, and storage into
// a single queryable database, mirroring the role SAP HANA plays for the
// paper's VDM workloads.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vdm/internal/bind"
	"vdm/internal/catalog"
	"vdm/internal/core"
	"vdm/internal/exec"
	"vdm/internal/plan"
	"vdm/internal/replica"
	"vdm/internal/sql"
	"vdm/internal/storage"
	"vdm/internal/types"
	"vdm/internal/wal"
)

// Engine is an in-memory HTAP database instance.
type Engine struct {
	db      *storage.DB
	cat     *catalog.Catalog
	profile core.Profile
	// costing gates the optimizer's statistics-driven pass (hash-join
	// build-side selection and inner-join reordering); on by default.
	costing bool
	plans   *planCache // nil = caching disabled
	metrics *engineMetrics
	opts    Options
	maint   *maintenance // nil = no background maintenance
	// admit is the admission gate: a buffered channel of
	// MaxConcurrentQueries tokens (nil = unlimited). In-flight queries
	// keep a reference to the gate they entered, so SetOptions can swap
	// it without stranding them.
	admit chan struct{}
	// execHooks holds governance fault-injection hooks for tests (see
	// SetExecHooks); production engines never set them.
	execHooks atomic.Pointer[exec.Hooks]
	// recovery is what Open restored from the WAL directory (nil for
	// in-memory engines); closeMu/closed make Close idempotent.
	recovery *storage.RecoveryInfo
	closeMu  sync.Mutex
	closed   bool
	// replicas is the WAL-shipped analytical read-replica set (nil
	// without Options.Replicas). Fixed at construction, like the WAL.
	replicas *replica.Set
	// lastServedTS is the read router's monotonic floor: the highest
	// commit timestamp any read has been served at, raised further by
	// every engine-side DML commit. A replica is only eligible when its
	// applied timestamp has reached the floor, which gives engine-level
	// monotonic reads and read-your-writes even as queries bounce
	// between primary and replicas.
	lastServedTS atomic.Uint64
}

// AutoParallelism, as Options.Parallelism, sizes the worker pool to
// runtime.GOMAXPROCS.
const AutoParallelism = -1

// Options control query execution strategy. The zero value is the
// serial vectorized executor: eligible operators run over column
// batches of dictionary codes, producing rows bit-identical to the
// row-at-a-time path (DisableVectorize forces the latter).
type Options struct {
	// Parallelism is the worker-pool size for morsel-driven parallel
	// execution: 0 or 1 runs serial, AutoParallelism uses GOMAXPROCS,
	// larger values pin an explicit pool size (which may exceed the
	// core count; useful for exercising the parallel paths in tests).
	Parallelism int
	// MorselSize is the number of row positions per scan morsel;
	// 0 uses exec.DefaultMorselSize.
	MorselSize int

	// DisableVectorize forces every operator onto the row-at-a-time
	// iterator path. The default (false) lets eligible scan, filter,
	// group-by, and join pipelines execute over column batches of
	// dictionary codes; results are identical either way, so this knob
	// exists for A/B benchmarking and differential testing.
	DisableVectorize bool
	// BatchSize is the number of row positions per column batch on the
	// vectorized path; 0 uses exec.DefaultBatchSize. Ignored when
	// DisableVectorize is set.
	BatchSize int

	// AutoMerge enables the background maintenance goroutine's delta
	// merging: any table whose delta reaches MergeThreshold rows is
	// merged into its main fragment (refreshing zone maps). False keeps
	// merges fully manual, as before.
	AutoMerge bool
	// MergeThreshold is the delta row count that triggers an automatic
	// merge; 0 uses DefaultMergeThreshold. Ignored unless AutoMerge.
	MergeThreshold int
	// GCInterval enables periodic MVCC version GC: every interval the
	// maintenance goroutine vacuums row versions that the snapshot
	// watermark proves invisible to all present and future readers.
	// 0 (the default) disables GC.
	GCInterval time.Duration

	// StatementTimeout bounds each query's wall time — admission wait,
	// planning, and execution included. Expiry fails the query with the
	// typed ErrTimeout. 0 (the default) means no timeout.
	StatementTimeout time.Duration
	// MemoryBudget bounds the bytes one query may hold in blocking
	// operators (hash tables, sorts, top-k heaps, group tables,
	// materialized results). Exceeding it fails that query with the
	// typed ErrMemoryBudget — never the process. 0 means unlimited.
	MemoryBudget int64
	// MaxConcurrentQueries bounds how many queries execute at once;
	// excess queries wait in FIFO order. 0 means unlimited.
	MaxConcurrentQueries int
	// QueueTimeout bounds the admission wait when the engine is at
	// MaxConcurrentQueries; expiry fails the query with the typed
	// ErrAdmissionTimeout. 0 waits as long as the query's context (and
	// StatementTimeout) allows.
	QueueTimeout time.Duration

	// WALDir enables durability: commits are write-ahead logged under
	// this directory and Open restores checkpoint + log on start. ""
	// (the default) keeps the engine purely in-memory. The log is fixed
	// at construction — SetOptions does not attach, detach, or
	// reconfigure it.
	WALDir string
	// WALSync is the log's fsync policy (default wal.SyncAlways: a
	// commit returns only once durable). Ignored without WALDir.
	WALSync wal.SyncPolicy
	// WALSyncInterval is the background fsync cadence under
	// wal.SyncInterval; 0 uses wal.DefaultSyncEvery.
	WALSyncInterval time.Duration
	// CheckpointEvery, with WALDir set, makes the maintenance goroutine
	// write a checkpoint (and truncate the log's covered prefix) each
	// time this many commits accumulate since the last one. 0 leaves
	// checkpointing manual (Engine.Checkpoint).
	CheckpointEvery int

	// Replicas, with WALDir set, starts this many WAL-shipped
	// analytical read replicas: each tails the log and applies commits
	// to its own store, and eligible reads are routed to the freshest
	// replica whose applied timestamp satisfies the router's
	// read-your-writes floor. 0 (the default) disables replication.
	// Like the WAL, the replica set is fixed at construction.
	Replicas int
	// MaxReplicaLag bounds, in commit timestamps, how far behind the
	// primary clock a replica may be and still serve reads; staler
	// replicas are passed over in favor of the primary. 0 means
	// unbounded (any caught-up-to-floor replica qualifies).
	MaxReplicaLag uint64
}

// DefaultMergeThreshold is the delta row count at which AutoMerge
// triggers a delta-to-main merge when Options.MergeThreshold is 0.
const DefaultMergeThreshold = 4096

// backgroundWork reports whether the options call for a maintenance
// goroutine. The zero value does not: the engine stays fully manual.
func (o Options) backgroundWork() bool {
	return o.AutoMerge || o.GCInterval > 0 || (o.WALDir != "" && o.CheckpointEvery > 0)
}

// New returns an empty engine with the full (SAP HANA) optimizer
// profile and serial execution.
func New() *Engine {
	return NewWithOptions(Options{})
}

// NewWithOptions returns an empty engine with the given execution
// options. With WALDir set it panics on a recovery or I/O failure —
// durable engines should use Open, which returns the error.
func NewWithOptions(o Options) *Engine {
	e, err := Open(o)
	if err != nil {
		panic(fmt.Sprintf("engine: NewWithOptions: %v (use Open for durable engines)", err))
	}
	return e
}

// Open returns an engine configured by o. With WALDir set it opens the
// durable store: restore the checkpoint, replay the WAL tail (torn
// final records are truncated, never partially replayed), restore the
// commit clock to the last durable timestamp, and arm the log; the
// outcome is readable via Recovery. Without WALDir the engine is purely
// in-memory and Open never fails.
func Open(o Options) (*Engine, error) {
	var db *storage.DB
	var rec *storage.RecoveryInfo
	if o.WALDir != "" {
		var err error
		db, rec, err = storage.OpenDB(o.WALDir, wal.Config{Sync: o.WALSync, SyncEvery: o.WALSyncInterval})
		if err != nil {
			return nil, err
		}
	} else {
		db = storage.NewDB()
	}
	e := &Engine{db: db, cat: catalog.New(db), profile: core.ProfileHANA, opts: o, costing: true, recovery: rec}
	e.admit = newAdmitGate(o)
	if o.Replicas > 0 {
		if o.WALDir == "" {
			return nil, fmt.Errorf("engine: Options.Replicas requires Options.WALDir (replicas are WAL-shipped)")
		}
		set, err := replica.Open(replica.Config{
			Dir:       o.WALDir,
			Replicas:  o.Replicas,
			PrimaryTS: db.CurrentTS,
		})
		if err != nil {
			db.CloseWAL()
			return nil, err
		}
		e.replicas = set
	}
	e.metrics = newEngineMetrics(e)
	e.startMaintenance()
	return e, nil
}

// ReplicaSet exposes the engine's WAL-shipped read replicas (nil when
// Options.Replicas is 0), for observability and for harnesses that
// pin replica snapshots directly (QueryOnReplica).
func (e *Engine) ReplicaSet() *replica.Set { return e.replicas }

// Recovery returns what Open restored from the WAL directory at
// construction: checkpoint timestamp, replayed records, torn-tail
// truncation, restored clock, and recovery duration. Nil for an
// in-memory engine.
func (e *Engine) Recovery() *storage.RecoveryInfo { return e.recovery }

// Checkpoint forces a durable checkpoint now: table data is serialized
// at the current commit timestamp and the log's covered prefix is
// deleted. An error for engines without a WAL.
func (e *Engine) Checkpoint() error { return e.db.Checkpoint() }

// SetOptions replaces the engine's execution options; the next query
// picks them up. If the maintenance-related fields changed, the
// background loop is stopped and restarted under the new settings.
func (e *Engine) SetOptions(o Options) {
	restart := o.backgroundWork() || e.opts.backgroundWork()
	if restart {
		e.stopMaintenance()
	}
	if o.MaxConcurrentQueries != e.opts.MaxConcurrentQueries {
		e.admit = newAdmitGate(o)
	}
	e.opts = o
	if restart {
		e.startMaintenance()
	}
}

// SetExecHooks installs (or, with nil, removes) governance
// fault-injection hooks: OnPoint fires at every executor pause point of
// subsequent queries, letting tests pin a query mid-operator and
// cancel, time out, or panic it deterministically.
func (e *Engine) SetExecHooks(h *exec.Hooks) { e.execHooks.Store(h) }

// Close shuts the engine down in dependency order: first the background
// maintenance goroutine (auto-merge, GC, checkpointing) stops — nothing
// may append to the log mid-close — then the replica tail loops stop
// (their stores stay readable, frozen at the last applied timestamp),
// and finally the WAL is flushed, fsynced, and closed. Idempotent:
// second and later calls return nil. After Close the engine still
// answers queries from memory, but commits on a durable engine fail
// with wal.ErrWALFailed.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.stopMaintenance()
	if e.replicas != nil {
		e.replicas.Close()
	}
	return e.db.CloseWAL()
}

// Options returns the active execution options.
func (e *Engine) Options() Options { return e.opts }

// execWorkers resolves Options.Parallelism to an effective pool size.
func (e *Engine) execWorkers() int {
	w := e.opts.Parallelism
	if w == AutoParallelism {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// configureBuilder applies the engine's execution options and metrics
// sink to a plan builder.
func (e *Engine) configureBuilder(b *exec.Builder) {
	if w := e.execWorkers(); w > 1 {
		b.SetParallel(w, e.opts.MorselSize)
	}
	if !e.opts.DisableVectorize {
		b.SetVectorize(e.opts.BatchSize)
	}
	b.SetMetrics(&e.metrics.exec)
}

// SetProfile switches the optimizer capability profile.
func (e *Engine) SetProfile(p core.Profile) { e.profile = p }

// EnableCosting switches the optimizer's statistics-driven pass on or
// off (on by default). Cached plans embed its decisions, so flipping it
// clears the plan cache.
func (e *Engine) EnableCosting(on bool) {
	e.costing = on
	e.invalidatePlans()
}

// CostingEnabled reports whether the cost-based pass is active.
func (e *Engine) CostingEnabled() bool { return e.costing }

// Profile returns the active optimizer profile.
func (e *Engine) Profile() core.Profile { return e.profile }

// Catalog exposes the metadata store.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// DB exposes the storage layer.
func (e *Engine) DB() *storage.DB { return e.db }

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    []types.Row
}

// invalidatePlans clears the plan cache (called on every DDL).
func (e *Engine) invalidatePlans() {
	if e.plans != nil {
		e.plans.invalidate()
	}
}

// MergeAllDeltas merges every table's write-optimized delta into its
// read-optimized main fragment and refreshes zone maps, enabling
// block pruning for range scans (typically called after bulk loads).
func (e *Engine) MergeAllDeltas() error {
	for _, name := range e.db.TableNames() {
		tbl, ok := e.db.Table(name)
		if !ok {
			continue
		}
		if err := tbl.MergeDelta(); err != nil {
			return err
		}
	}
	return nil
}

// Exec runs a single DDL or DML statement.
func (e *Engine) Exec(sqlText string) error {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return err
	}
	return e.execStatement(st)
}

// ExecScript runs a semicolon-separated sequence of statements.
func (e *Engine) ExecScript(script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if err := e.execStatement(st); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) execStatement(st sql.Statement) error {
	switch st := st.(type) {
	case *sql.CreateTable:
		e.invalidatePlans()
		return e.createTable(st)
	case *sql.CreateView:
		e.invalidatePlans()
		return e.createView(st)
	case *sql.DropTable:
		e.invalidatePlans()
		if st.View {
			return e.cat.DropView(st.Name)
		}
		return e.db.DropTable(st.Name)
	case *sql.Insert:
		return e.noteWrite(e.insert(st))
	case *sql.Delete:
		return e.noteWrite(e.delete(st))
	case *sql.Update:
		return e.noteWrite(e.update(st))
	case *sql.Query:
		_, err := e.queryStatement(context.Background(), "", st)
		return err
	}
	return fmt.Errorf("engine: unsupported statement %T", st)
}

// noteWrite raises the read router's floor to the commit clock after a
// successful engine-side DML statement, so subsequent reads through
// this engine are never routed to a replica that has not yet applied
// the write (read-your-writes at engine granularity).
func (e *Engine) noteWrite(err error) error {
	if err == nil && e.replicas != nil {
		e.noteServed(e.db.CurrentTS())
	}
	return err
}

// noteServed raises the router's monotonic floor to ts.
func (e *Engine) noteServed(ts uint64) {
	for {
		cur := e.lastServedTS.Load()
		if ts <= cur || e.lastServedTS.CompareAndSwap(cur, ts) {
			return
		}
	}
}

func (e *Engine) createTable(ct *sql.CreateTable) error {
	var schema types.Schema
	for _, c := range ct.Columns {
		schema = append(schema, types.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
	}
	tbl, err := e.db.CreateTable(ct.Name, schema)
	if err != nil {
		return err
	}
	ordOf := func(name string) (int, error) {
		i := schema.IndexOf(name)
		if i < 0 {
			return 0, fmt.Errorf("engine: %s: unknown column %s in constraint", ct.Name, name)
		}
		return i, nil
	}
	for ki, k := range ct.Keys {
		kc := storage.KeyConstraint{Primary: k.Primary}
		if k.Primary {
			kc.Name = fmt.Sprintf("%s_pk", ct.Name)
		} else {
			kc.Name = fmt.Sprintf("%s_uq%d", ct.Name, ki)
		}
		for _, cn := range k.Columns {
			ord, err := ordOf(cn)
			if err != nil {
				return err
			}
			kc.Columns = append(kc.Columns, ord)
			if k.Primary {
				schema[ord].NotNull = true
			}
		}
		if err := tbl.AddKey(kc); err != nil {
			return err
		}
	}
	for fi, fk := range ct.ForeignKeys {
		sfk := storage.ForeignKey{
			Name:     fmt.Sprintf("%s_fk%d", ct.Name, fi),
			RefTable: fk.RefTable,
		}
		for _, cn := range fk.Columns {
			ord, err := ordOf(cn)
			if err != nil {
				return err
			}
			sfk.Columns = append(sfk.Columns, ord)
		}
		if err := tbl.AddForeignKey(sfk); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) createView(cv *sql.CreateView) error {
	v := &catalog.ViewDef{Name: cv.Name, Query: cv.Query, Macros: map[string]sql.Expr{}}
	for _, m := range cv.Macros {
		v.Macros[strings.ToUpper(m.Name)] = m.Expr
	}
	if err := e.cat.CreateView(v); err != nil {
		return err
	}
	// Validate eagerly so broken definitions surface at deploy time.
	b := bind.New(e.cat, "")
	if _, err := b.BindQuery(cv.Query); err != nil {
		_ = e.cat.DropView(cv.Name)
		return fmt.Errorf("engine: view %s: %v", cv.Name, err)
	}
	return nil
}

func (e *Engine) insert(ins *sql.Insert) error {
	tbl, ok := e.db.Table(ins.Table)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", ins.Table)
	}
	schema := tbl.Schema()
	// Column mapping: target ordinal for each supplied value.
	var ords []int
	if len(ins.Columns) == 0 {
		for i := range schema {
			ords = append(ords, i)
		}
	} else {
		for _, cn := range ins.Columns {
			i := schema.IndexOf(cn)
			if i < 0 {
				return fmt.Errorf("engine: %s: unknown column %s", ins.Table, cn)
			}
			ords = append(ords, i)
		}
	}
	tx := e.db.Begin()
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(ords) {
			tx.Rollback()
			return fmt.Errorf("engine: %s: %d values for %d columns", ins.Table, len(exprRow), len(ords))
		}
		row := make(types.Row, len(schema))
		for i := range row {
			row[i] = types.NewNull(schema[i].Type)
		}
		for i, se := range exprRow {
			v, err := e.evalConst(se)
			if err != nil {
				tx.Rollback()
				return err
			}
			row[ords[i]] = coerce(v, schema[ords[i]].Type)
		}
		if err := tx.Insert(tbl, row); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

// coerce adapts literal values to the column type (integer literals into
// decimal/float columns).
func coerce(v types.Value, t types.Type) types.Value {
	if v.IsNull() {
		return types.NewNull(t)
	}
	switch {
	case t == types.TDecimal && v.Typ == types.TInt:
		return types.NewDecimal(v.Decimal())
	case t == types.TFloat && (v.Typ == types.TInt || v.Typ == types.TDecimal):
		return types.NewFloat(v.Float())
	case t == types.TDate && v.Typ == types.TInt:
		return types.NewDate(v.Int())
	}
	return v
}

// evalConst evaluates a constant SQL expression (literals and functions
// of literals).
func (e *Engine) evalConst(se sql.Expr) (types.Value, error) {
	b := bind.New(e.cat, "")
	pe, err := b.BindConstExpr(se)
	if err != nil {
		return types.Value{}, err
	}
	fn, err := exec.Compile(pe, map[types.ColumnID]int{})
	if err != nil {
		return types.Value{}, err
	}
	return fn(nil)
}

func (e *Engine) delete(d *sql.Delete) error {
	tbl, ok := e.db.Table(d.Table)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", d.Table)
	}
	// The lease pins the read timestamp against concurrent version GC for
	// the whole read-then-write span; DeleteAt anchors each position to
	// the snapshot's data version so it survives compactions regardless.
	lease := e.db.AcquireRead()
	defer lease.Release()
	snap, positions, err := e.matchRows(tbl, lease.TS(), d.Where)
	if err != nil {
		return err
	}
	tx := e.db.Begin()
	for _, pos := range positions {
		if err := tx.DeleteAt(snap, pos); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

func (e *Engine) update(u *sql.Update) error {
	tbl, ok := e.db.Table(u.Table)
	if !ok {
		return fmt.Errorf("engine: table %s does not exist", u.Table)
	}
	schema := tbl.Schema()
	lease := e.db.AcquireRead()
	defer lease.Release()
	snap, positions, err := e.matchRows(tbl, lease.TS(), u.Where)
	if err != nil {
		return err
	}
	// Compile SET expressions over the table row.
	pred, slots, bErr := e.rowExprCompiler(tbl)
	if bErr != nil {
		return bErr
	}
	type setter struct {
		ord int
		fn  exec.EvalFn
	}
	var setters []setter
	for _, as := range u.Set {
		ord := schema.IndexOf(as.Column)
		if ord < 0 {
			return fmt.Errorf("engine: %s: unknown column %s", u.Table, as.Column)
		}
		pe, err := pred(as.Expr)
		if err != nil {
			return err
		}
		fn, err := exec.Compile(pe, slots)
		if err != nil {
			return err
		}
		setters = append(setters, setter{ord: ord, fn: fn})
	}
	tx := e.db.Begin()
	for _, pos := range positions {
		row := snap.Row(pos)
		newRow := row.Clone()
		for _, s := range setters {
			v, err := s.fn(row)
			if err != nil {
				tx.Rollback()
				return err
			}
			newRow[s.ord] = coerce(v, schema[s.ord].Type)
		}
		if err := tx.UpdateAt(snap, pos, newRow); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

// rowExprCompiler returns a binder for expressions over a table's row
// along with the slot map (ordinal positions).
func (e *Engine) rowExprCompiler(tbl *storage.Table) (func(sql.Expr) (plan.Expr, error), map[types.ColumnID]int, error) {
	b := bind.New(e.cat, "")
	binder, cols, err := b.TableRowBinder(tbl.Name())
	if err != nil {
		return nil, nil, err
	}
	slots := make(map[types.ColumnID]int, len(cols))
	for i, id := range cols {
		slots[id] = i
	}
	return binder, slots, nil
}

// matchRows returns a snapshot at ts plus the row positions visible in
// it that match the WHERE clause (all rows if nil). Positions are only
// meaningful against the returned snapshot (use Txn.DeleteAt/UpdateAt).
func (e *Engine) matchRows(tbl *storage.Table, ts uint64, where sql.Expr) (*storage.Snapshot, []int, error) {
	snap := tbl.SnapshotAt(ts)
	if where == nil {
		return snap, snap.Rows(), nil
	}
	binder, slots, err := e.rowExprCompiler(tbl)
	if err != nil {
		return nil, nil, err
	}
	pe, err := binder(where)
	if err != nil {
		return nil, nil, err
	}
	fn, err := exec.Compile(pe, slots)
	if err != nil {
		return nil, nil, err
	}
	var out []int
	nCols := len(tbl.Schema())
	ords := make([]int, nCols)
	for i := range ords {
		ords[i] = i
	}
	row := make(types.Row, nCols)
	// Collect positions first, then fetch values with one lock
	// acquisition per row: calling ValuesInto from inside the ForEach
	// callback would recursively RLock the table mutex, which deadlocks
	// when a writer (e.g. a background MergeDelta) queues between the
	// two acquisitions.
	for _, pos := range snap.Rows() {
		snap.ValuesInto(pos, ords, row)
		v, err := fn(row)
		if err != nil {
			return nil, nil, err
		}
		if !v.IsNull() && v.Bool() {
			out = append(out, pos)
		}
	}
	return snap, out, nil
}
