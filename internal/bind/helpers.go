package bind

import (
	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// BindConstExpr binds an expression that must not reference any columns
// (INSERT values, LIMIT counts, and the like).
func (b *Binder) BindConstExpr(e sql.Expr) (plan.Expr, error) {
	return b.bindExpr(e, &scope{}, false)
}

// TableRowBinder returns an expression binder over a base table's full
// row together with the bound column IDs in schema order. It is used by
// the engine's UPDATE/DELETE row matching.
func (b *Binder) TableRowBinder(table string) (func(sql.Expr) (plan.Expr, error), []types.ColumnID, error) {
	sc := &scope{}
	node, err := b.bindTableRef(&sql.TableRef{Name: table}, sc, 0)
	if err != nil {
		return nil, nil, err
	}
	cols := node.Columns()
	return func(e sql.Expr) (plan.Expr, error) {
		return b.bindExpr(e, sc, false)
	}, cols, nil
}
