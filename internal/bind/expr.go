package bind

import (
	"fmt"
	"strings"

	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// exprHasAggregate reports whether the SQL expression contains an
// aggregate function call.
func exprHasAggregate(e sql.Expr) bool {
	switch e := e.(type) {
	case *sql.FuncCall:
		if sql.AggFuncs[e.Name] {
			return true
		}
		for _, a := range e.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sql.BinOp:
		return exprHasAggregate(e.L) || exprHasAggregate(e.R)
	case *sql.UnOp:
		return exprHasAggregate(e.E)
	case *sql.IsNull:
		return exprHasAggregate(e.E)
	case *sql.InList:
		if exprHasAggregate(e.E) {
			return true
		}
		for _, x := range e.List {
			if exprHasAggregate(x) {
				return true
			}
		}
	case *sql.Between:
		return exprHasAggregate(e.E) || exprHasAggregate(e.Lo) || exprHasAggregate(e.Hi)
	case *sql.CaseExpr:
		for _, w := range e.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Then) {
				return true
			}
		}
		return e.Else != nil && exprHasAggregate(e.Else)
	case *sql.AllowPrecisionLoss:
		return exprHasAggregate(e.E)
	}
	return false
}

// numericResult computes the promoted type of an arithmetic operation.
func numericResult(op string, l, r types.Type) (types.Type, error) {
	if l == types.TNull {
		l = r
	}
	if r == types.TNull {
		r = l
	}
	if !types.Numeric(l) || !types.Numeric(r) {
		return 0, fmt.Errorf("bind: operator %s requires numeric operands, got %s and %s", op, l, r)
	}
	if op == "/" {
		if l == types.TDecimal || r == types.TDecimal {
			return types.TDecimal, nil
		}
		return types.TFloat, nil
	}
	switch {
	case l == types.TFloat || r == types.TFloat:
		return types.TFloat, nil
	case l == types.TDecimal || r == types.TDecimal:
		return types.TDecimal, nil
	default:
		return types.TInt, nil
	}
}

// binExpr builds a typed binary plan expression.
func binExpr(op string, l, r plan.Expr) (plan.Expr, error) {
	switch op {
	case "AND", "OR":
		return &plan.Bin{Op: op, L: l, R: r, Typ: types.TBool}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return &plan.Bin{Op: op, L: l, R: r, Typ: types.TBool}, nil
	case "||":
		return &plan.Bin{Op: op, L: l, R: r, Typ: types.TString}, nil
	case "+", "-", "*", "/":
		t, err := numericResult(op, l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		return &plan.Bin{Op: op, L: l, R: r, Typ: t}, nil
	}
	return nil, fmt.Errorf("bind: unknown operator %s", op)
}

// bindExpr binds a scalar SQL expression against the scope. Aggregate
// function calls are rejected (they are handled by the aggregate binding
// path).
func (b *Binder) bindExpr(e sql.Expr, sc *scope, allowAgg bool) (plan.Expr, error) {
	switch e := e.(type) {
	case *sql.ColRef:
		c, err := sc.resolve(e.Table, e.Name)
		if err != nil {
			return nil, err
		}
		return &plan.ColRef{ID: c.id, Typ: c.typ}, nil
	case *sql.Lit:
		return &plan.Const{Val: e.Val}, nil
	case *sql.BinOp:
		l, err := b.bindExpr(e.L, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(e.R, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return binExpr(e.Op, l, r)
	case *sql.UnOp:
		x, err := b.bindExpr(e.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		if e.Op == "NOT" {
			return &plan.Un{Op: "NOT", E: x, Typ: types.TBool}, nil
		}
		return &plan.Un{Op: "-", E: x, Typ: x.Type()}, nil
	case *sql.IsNull:
		x, err := b.bindExpr(e.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return &plan.IsNullExpr{E: x, Not: e.Not}, nil
	case *sql.InList:
		x, err := b.bindExpr(e.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		out := &plan.InListExpr{E: x, Not: e.Not}
		for _, v := range e.List {
			vv, err := b.bindExpr(v, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, vv)
		}
		return out, nil
	case *sql.Between:
		x, err := b.bindExpr(e.E, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(e.Lo, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(e.Hi, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		ge := &plan.Bin{Op: ">=", L: x, R: lo, Typ: types.TBool}
		le := &plan.Bin{Op: "<=", L: x, R: hi, Typ: types.TBool}
		return &plan.Bin{Op: "AND", L: ge, R: le, Typ: types.TBool}, nil
	case *sql.FuncCall:
		if sql.AggFuncs[e.Name] {
			return nil, fmt.Errorf("bind: aggregate %s is not allowed here", e.Name)
		}
		return b.bindFunc(e, sc, allowAgg)
	case *sql.CaseExpr:
		out := &plan.Case{}
		for _, w := range e.Whens {
			c, err := b.bindExpr(w.Cond, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			t, err := b.bindExpr(w.Then, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, plan.CaseArm{Cond: c, Then: t})
			if out.Typ == types.TNull || out.Typ == 0 {
				out.Typ = t.Type()
			}
		}
		if e.Else != nil {
			el, err := b.bindExpr(e.Else, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			out.Else = el
			if out.Typ == types.TNull || out.Typ == 0 {
				out.Typ = el.Type()
			}
		}
		return out, nil
	case *sql.AllowPrecisionLoss:
		return nil, fmt.Errorf("bind: ALLOW_PRECISION_LOSS must wrap an aggregate expression")
	case *sql.MacroRef:
		return nil, fmt.Errorf("bind: expression macro %s outside a query over its view", e.Name)
	case *sql.Exists:
		return nil, fmt.Errorf("bind: EXISTS is only supported as a top-level WHERE conjunct")
	case *sql.InSubquery:
		return nil, fmt.Errorf("bind: IN (subquery) is only supported as a top-level WHERE conjunct")
	}
	return nil, fmt.Errorf("bind: unknown expression %T", e)
}

// scalarFuncs maps a function name to its result-type rule.
var scalarFuncs = map[string]func(args []plan.Expr) (types.Type, error){
	"ROUND": func(args []plan.Expr) (types.Type, error) {
		if len(args) < 1 || len(args) > 2 {
			return 0, fmt.Errorf("ROUND takes 1 or 2 arguments")
		}
		t := args[0].Type()
		if t == types.TInt {
			return types.TInt, nil
		}
		if t != types.TDecimal && t != types.TFloat && t != types.TNull {
			return 0, fmt.Errorf("ROUND requires a numeric argument")
		}
		return t, nil
	},
	"ABS": func(args []plan.Expr) (types.Type, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("ABS takes 1 argument")
		}
		if !numericOrNull(args[0].Type()) {
			return 0, fmt.Errorf("ABS requires a numeric argument")
		}
		return args[0].Type(), nil
	},
	"FLOOR": numArg1Int, "CEIL": numArg1Int,
	"COALESCE": func(args []plan.Expr) (types.Type, error) {
		if len(args) == 0 {
			return 0, fmt.Errorf("COALESCE needs arguments")
		}
		for _, a := range args {
			if a.Type() != types.TNull {
				return a.Type(), nil
			}
		}
		return types.TNull, nil
	},
	"IFNULL": func(args []plan.Expr) (types.Type, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("IFNULL takes 2 arguments")
		}
		if args[0].Type() != types.TNull {
			return args[0].Type(), nil
		}
		return args[1].Type(), nil
	},
	"NULLIF": func(args []plan.Expr) (types.Type, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("NULLIF takes 2 arguments")
		}
		return args[0].Type(), nil
	},
	"UPPER": strArg1, "LOWER": strArg1,
	"LENGTH": func(args []plan.Expr) (types.Type, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("LENGTH takes 1 argument")
		}
		if t := args[0].Type(); t != types.TString && t != types.TNull {
			return 0, fmt.Errorf("LENGTH requires a string argument")
		}
		return types.TInt, nil
	},
	"SUBSTR": func(args []plan.Expr) (types.Type, error) {
		if len(args) < 2 || len(args) > 3 {
			return 0, fmt.Errorf("SUBSTR takes 2 or 3 arguments")
		}
		if t := args[0].Type(); t != types.TString && t != types.TNull {
			return 0, fmt.Errorf("SUBSTR requires a string first argument")
		}
		for _, a := range args[1:] {
			if !intOrNull(a.Type()) {
				return 0, fmt.Errorf("SUBSTR positions must be integers")
			}
		}
		return types.TString, nil
	},
	"CONCAT": func(args []plan.Expr) (types.Type, error) {
		if len(args) < 2 {
			return 0, fmt.Errorf("CONCAT takes at least 2 arguments")
		}
		return types.TString, nil
	},
	"MOD": func(args []plan.Expr) (types.Type, error) {
		if len(args) != 2 {
			return 0, fmt.Errorf("MOD takes 2 arguments")
		}
		if !intOrNull(args[0].Type()) || !intOrNull(args[1].Type()) {
			return 0, fmt.Errorf("MOD requires integer arguments")
		}
		return types.TInt, nil
	},
	"CURRENT_USER": func(args []plan.Expr) (types.Type, error) {
		if len(args) != 0 {
			return 0, fmt.Errorf("CURRENT_USER takes no arguments")
		}
		return types.TString, nil
	},
	"TO_DECIMAL": func(args []plan.Expr) (types.Type, error) {
		if len(args) < 1 || len(args) > 2 {
			return 0, fmt.Errorf("TO_DECIMAL takes 1 or 2 arguments")
		}
		if !numericOrNull(args[0].Type()) {
			return 0, fmt.Errorf("TO_DECIMAL requires a numeric argument")
		}
		return types.TDecimal, nil
	},
}

func numArg1Int(args []plan.Expr) (types.Type, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("function takes 1 argument")
	}
	if !numericOrNull(args[0].Type()) {
		return 0, fmt.Errorf("function requires a numeric argument")
	}
	return types.TInt, nil
}

func strArg1(args []plan.Expr) (types.Type, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("function takes 1 argument")
	}
	if t := args[0].Type(); t != types.TString && t != types.TNull {
		return 0, fmt.Errorf("function requires a string argument")
	}
	return types.TString, nil
}

func numericOrNull(t types.Type) bool {
	return types.Numeric(t) || t == types.TNull
}

func intOrNull(t types.Type) bool {
	return t == types.TInt || t == types.TNull
}

func (b *Binder) bindFunc(e *sql.FuncCall, sc *scope, allowAgg bool) (plan.Expr, error) {
	name := strings.ToUpper(e.Name)
	rule, ok := scalarFuncs[name]
	if !ok {
		return nil, fmt.Errorf("bind: unknown function %s", e.Name)
	}
	// CURRENT_USER() resolves at bind time (DAC injection, §3).
	if name == "CURRENT_USER" {
		return &plan.Const{Val: types.NewString(b.user)}, nil
	}
	var args []plan.Expr
	for _, a := range e.Args {
		x, err := b.bindExpr(a, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		args = append(args, x)
	}
	t, err := rule(args)
	if err != nil {
		return nil, fmt.Errorf("bind: %s: %v", name, err)
	}
	return &plan.Func{Name: name, Args: args, Typ: t}, nil
}
