package bind

import (
	"fmt"
	"strings"

	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// aggBinder carries the state of binding one aggregate SELECT block.
type aggBinder struct {
	b         *Binder
	sc        *scope
	groupKeys map[string]types.ColumnID // ExprKey of group expr -> group col
	aggKeys   map[string]types.ColumnID // canonical agg key -> agg col
	aggs      []plan.AggCol
	apl       bool // inside ALLOW_PRECISION_LOSS
}

// bindAggregate builds Project(Filter?(GroupBy(preProject?(input)))) for
// an aggregate SELECT.
func (b *Binder) bindAggregate(sel *sql.Select, items []boundItem, input plan.Node, sc *scope) (plan.Node, []types.ColumnID, []string, error) {
	ab := &aggBinder{
		b:         b,
		sc:        sc,
		groupKeys: make(map[string]types.ColumnID),
		aggKeys:   make(map[string]types.ColumnID),
	}

	// Bind the grouping expressions. Non-column group expressions are
	// computed in a projection below the GroupBy.
	var groupExprs []plan.Expr
	needProject := false
	for _, ge := range sel.GroupBy {
		gexpr, err := b.expandMacros(ge, sc)
		if err != nil {
			return nil, nil, nil, err
		}
		be, err := b.bindExpr(gexpr, sc, false)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, ok := be.(*plan.ColRef); !ok {
			needProject = true
		}
		groupExprs = append(groupExprs, be)
	}
	remap := make(map[types.ColumnID]types.ColumnID)
	var computedIDs []types.ColumnID // parallel to groupExprs; -1 sentinel unused
	if needProject {
		// Pass-through all input columns under fresh IDs (each column is
		// defined by exactly one node) plus the computed group columns.
		var cols []plan.ProjCol
		for _, id := range input.Columns() {
			fresh := b.ctx.NewColumn(b.ctx.Name(id), b.ctx.Type(id))
			cols = append(cols, plan.ProjCol{ID: fresh, Expr: &plan.ColRef{ID: id, Typ: b.ctx.Type(id)}})
			remap[id] = fresh
		}
		for _, be := range groupExprs {
			if _, ok := be.(*plan.ColRef); ok {
				computedIDs = append(computedIDs, -1)
				continue
			}
			id := b.ctx.NewColumn("__group", be.Type())
			cols = append(cols, plan.ProjCol{ID: id, Expr: be})
			computedIDs = append(computedIDs, id)
		}
		input = &plan.Project{Input: input, Cols: cols}
		// The scope now refers to stale IDs; remap it so aggregate
		// arguments and item expressions bind to the projected columns.
		for i := range sc.cols {
			if to, ok := remap[sc.cols[i].id]; ok {
				sc.cols[i].id = to
			}
		}
	}
	var groupCols []types.ColumnID
	for i, be := range groupExprs {
		// Keys are computed over post-projection IDs so that item
		// expressions (bound against the remapped scope) match.
		keyExpr := plan.RemapColumns(be, remap)
		key := plan.ExprKey(keyExpr)
		if _, dup := ab.groupKeys[key]; dup {
			continue
		}
		var id types.ColumnID
		if cr, ok := keyExpr.(*plan.ColRef); ok {
			id = cr.ID
		} else {
			id = computedIDs[i]
		}
		groupCols = append(groupCols, id)
		ab.groupKeys[key] = id
	}

	// Transform the select items (and HAVING), extracting aggregates.
	var outExprs []plan.Expr
	for _, it := range items {
		if it.pre != nil {
			// Star-expanded column: must be a grouping column.
			keyExpr := plan.RemapColumns(it.pre, remap)
			if id, ok := ab.groupKeys[plan.ExprKey(keyExpr)]; ok {
				outExprs = append(outExprs, &plan.ColRef{ID: id, Typ: b.ctx.Type(id)})
				continue
			}
			return nil, nil, nil, fmt.Errorf("bind: column %s must appear in GROUP BY or inside an aggregate", it.name)
		}
		e, err := ab.transform(it.expr)
		if err != nil {
			return nil, nil, nil, err
		}
		outExprs = append(outExprs, e)
	}
	var havingExpr plan.Expr
	if sel.Having != nil {
		h, err := b.expandMacros(sel.Having, sc)
		if err != nil {
			return nil, nil, nil, err
		}
		havingExpr, err = ab.transform(h)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	var node plan.Node = &plan.GroupBy{Input: input, GroupCols: groupCols, Aggs: ab.aggs}
	if havingExpr != nil {
		node = &plan.Filter{Input: node, Cond: havingExpr}
	}
	var projCols []plan.ProjCol
	var outIDs []types.ColumnID
	var outNames []string
	for i, e := range outExprs {
		id := b.ctx.NewColumn(items[i].name, e.Type())
		projCols = append(projCols, plan.ProjCol{ID: id, Expr: e})
		outIDs = append(outIDs, id)
		outNames = append(outNames, items[i].name)
	}
	return &plan.Project{Input: node, Cols: projCols}, outIDs, outNames, nil
}

// transform rewrites a select-item expression into a plan expression
// over the GroupBy output: aggregate calls become references to
// aggregate columns, grouping expressions become references to group
// columns, and anything else must be built from those (or constants).
func (ab *aggBinder) transform(e sql.Expr) (plan.Expr, error) {
	switch e := e.(type) {
	case *sql.AllowPrecisionLoss:
		saved := ab.apl
		ab.apl = true
		out, err := ab.transform(e.E)
		ab.apl = saved
		return out, err
	case *sql.FuncCall:
		if sql.AggFuncs[e.Name] {
			return ab.bindAggCall(e)
		}
	}
	// A complete match against a grouping expression?
	if !exprHasAggregate(e) {
		if be, err := ab.b.bindExpr(e, ab.sc, false); err == nil {
			key := plan.ExprKey(be)
			if id, ok := ab.groupKeys[key]; ok {
				return &plan.ColRef{ID: id, Typ: ab.b.ctx.Type(id)}, nil
			}
			if plan.ColsUsed(be).Empty() {
				return be, nil
			}
		}
	}
	// Otherwise decompose structurally.
	switch e := e.(type) {
	case *sql.ColRef:
		return nil, fmt.Errorf("bind: column %s must appear in GROUP BY or inside an aggregate", e.String())
	case *sql.Lit:
		return &plan.Const{Val: e.Val}, nil
	case *sql.BinOp:
		l, err := ab.transform(e.L)
		if err != nil {
			return nil, err
		}
		r, err := ab.transform(e.R)
		if err != nil {
			return nil, err
		}
		return binExpr(e.Op, l, r)
	case *sql.UnOp:
		x, err := ab.transform(e.E)
		if err != nil {
			return nil, err
		}
		if e.Op == "NOT" {
			return &plan.Un{Op: "NOT", E: x, Typ: types.TBool}, nil
		}
		return &plan.Un{Op: "-", E: x, Typ: x.Type()}, nil
	case *sql.IsNull:
		x, err := ab.transform(e.E)
		if err != nil {
			return nil, err
		}
		return &plan.IsNullExpr{E: x, Not: e.Not}, nil
	case *sql.InList:
		x, err := ab.transform(e.E)
		if err != nil {
			return nil, err
		}
		out := &plan.InListExpr{E: x, Not: e.Not}
		for _, v := range e.List {
			vv, err := ab.transform(v)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, vv)
		}
		return out, nil
	case *sql.Between:
		x, err := ab.transform(e.E)
		if err != nil {
			return nil, err
		}
		lo, err := ab.transform(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := ab.transform(e.Hi)
		if err != nil {
			return nil, err
		}
		ge := &plan.Bin{Op: ">=", L: x, R: lo, Typ: types.TBool}
		le := &plan.Bin{Op: "<=", L: x, R: hi, Typ: types.TBool}
		return &plan.Bin{Op: "AND", L: ge, R: le, Typ: types.TBool}, nil
	case *sql.FuncCall:
		var args []plan.Expr
		for _, a := range e.Args {
			x, err := ab.transform(a)
			if err != nil {
				return nil, err
			}
			args = append(args, x)
		}
		name := strings.ToUpper(e.Name)
		rule, ok := scalarFuncs[name]
		if !ok {
			return nil, fmt.Errorf("bind: unknown function %s", e.Name)
		}
		t, err := rule(args)
		if err != nil {
			return nil, fmt.Errorf("bind: %s: %v", name, err)
		}
		return &plan.Func{Name: name, Args: args, Typ: t}, nil
	case *sql.CaseExpr:
		out := &plan.Case{}
		for _, w := range e.Whens {
			c, err := ab.transform(w.Cond)
			if err != nil {
				return nil, err
			}
			t, err := ab.transform(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, plan.CaseArm{Cond: c, Then: t})
			if out.Typ == 0 || out.Typ == types.TNull {
				out.Typ = t.Type()
			}
		}
		if e.Else != nil {
			el, err := ab.transform(e.Else)
			if err != nil {
				return nil, err
			}
			out.Else = el
			if out.Typ == 0 || out.Typ == types.TNull {
				out.Typ = el.Type()
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("bind: cannot use %T here", e)
}

// aggResultType computes the output type of an aggregate.
func aggResultType(op plan.AggOp, arg types.Type) types.Type {
	switch op {
	case plan.AggCount:
		return types.TInt
	case plan.AggSum:
		return arg
	case plan.AggMin, plan.AggMax:
		return arg
	case plan.AggAvg:
		if arg == types.TDecimal {
			return types.TDecimal
		}
		return types.TFloat
	}
	return arg
}

func (ab *aggBinder) bindAggCall(e *sql.FuncCall) (plan.Expr, error) {
	var op plan.AggOp
	switch e.Name {
	case "SUM":
		op = plan.AggSum
	case "COUNT":
		op = plan.AggCount
	case "MIN":
		op = plan.AggMin
	case "MAX":
		op = plan.AggMax
	case "AVG":
		op = plan.AggAvg
	default:
		return nil, fmt.Errorf("bind: unknown aggregate %s", e.Name)
	}
	var arg plan.Expr
	if e.Star {
		if op != plan.AggCount {
			return nil, fmt.Errorf("bind: %s(*) is not valid", e.Name)
		}
	} else {
		if len(e.Args) != 1 {
			return nil, fmt.Errorf("bind: %s takes exactly one argument", e.Name)
		}
		if exprHasAggregate(e.Args[0]) {
			return nil, fmt.Errorf("bind: nested aggregates are not allowed")
		}
		var err error
		arg, err = ab.b.bindExpr(e.Args[0], ab.sc, false)
		if err != nil {
			return nil, err
		}
		if op == plan.AggSum || op == plan.AggAvg {
			if !types.Numeric(arg.Type()) && arg.Type() != types.TNull {
				return nil, fmt.Errorf("bind: %s requires a numeric argument", e.Name)
			}
		}
	}
	key := fmt.Sprintf("%s|%v|%v|%v|%s", op, e.Star, e.Distinct, ab.apl, plan.ExprKey(arg))
	if id, ok := ab.aggKeys[key]; ok {
		return &plan.ColRef{ID: id, Typ: ab.b.ctx.Type(id)}, nil
	}
	var argT types.Type
	if arg != nil {
		argT = arg.Type()
	}
	rt := aggResultType(op, argT)
	id := ab.b.ctx.NewColumn(strings.ToLower(e.Name), rt)
	ab.aggKeys[key] = id
	ab.aggs = append(ab.aggs, plan.AggCol{
		ID:                 id,
		Op:                 op,
		Arg:                arg,
		Star:               e.Star,
		Distinct:           e.Distinct,
		AllowPrecisionLoss: ab.apl,
	})
	return &plan.ColRef{ID: id, Typ: rt}, nil
}
