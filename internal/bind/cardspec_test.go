package bind

import (
	"fmt"
	"testing"

	"vdm/internal/catalog"
	"vdm/internal/plan"
	"vdm/internal/sql"
)

func findJoin(n plan.Node) *plan.Join {
	if j, ok := n.(*plan.Join); ok {
		return j
	}
	for _, c := range n.Inputs() {
		if j := findJoin(c); j != nil {
			return j
		}
	}
	return nil
}

// TestCardSpecRoundTrip drives every §7.3 cardinality endpoint
// combination through parse and bind for both join kinds and asserts
// the spec lands intact on the plan.Join. The estimator treats these
// declarations as authoritative, so silently dropping one would corrupt
// cardinality estimates rather than fail loudly.
func TestCardSpecRoundTrip(t *testing.T) {
	cat := testCatalog(t)
	ends := []struct {
		kw  string
		end sql.CardEnd
	}{
		{"many", sql.CardMany},
		{"one", sql.CardOne},
		{"exact one", sql.CardExactOne},
	}
	kinds := []struct {
		kw   string
		kind plan.JoinKind
	}{
		{"inner", plan.InnerJoin},
		{"left outer", plan.LeftOuterJoin},
	}
	for _, k := range kinds {
		for _, l := range ends {
			for _, r := range ends {
				q := fmt.Sprintf(`select t.a from t %s %s to %s join u on t.a = u.a`,
					k.kw, l.kw, r.kw)
				t.Run(fmt.Sprintf("%s/%s-to-%s", k.kind, l.kw, r.kw), func(t *testing.T) {
					p := mustBind(t, cat, q)
					j := findJoin(p.Root)
					if j == nil {
						t.Fatalf("no join bound for %q", q)
					}
					if j.Kind != k.kind {
						t.Fatalf("kind = %v, want %v", j.Kind, k.kind)
					}
					want := sql.CardSpec{Left: l.end, Right: r.end}
					if j.Card != want {
						t.Fatalf("card = %v, want %v (query %q)", j.Card, want, q)
					}
				})
			}
		}
	}

	// No spec declared: the plan join must carry the zero CardSpec, not
	// an accidental default.
	p := mustBind(t, cat, `select t.a from t inner join u on t.a = u.a`)
	if j := findJoin(p.Root); j == nil || j.Card.Specified() {
		t.Fatalf("unspecified join grew a card spec: %+v", j)
	}
}

// TestCardSpecRoundTripForms checks the surrounding FROM-clause forms a
// spec can ride on: a bare-JOIN spelling (no INNER keyword), aliased
// tables, a derived-table side, a parenthesized join, and a join inside
// a view body expanded by the binder.
func TestCardSpecRoundTripForms(t *testing.T) {
	cat := testCatalog(t)
	want := sql.CardSpec{Left: sql.CardMany, Right: sql.CardExactOne}
	check := func(t *testing.T, p *plan.Plan, q string) {
		t.Helper()
		j := findJoin(p.Root)
		if j == nil {
			t.Fatalf("no join in plan for %q", q)
		}
		if j.Card != want {
			t.Fatalf("card = %v, want %v (query %q)", j.Card, want, q)
		}
	}

	forms := []string{
		`select t.a from t many to exact one join u on t.a = u.a`,
		`select x.a from t x inner many to exact one join u y on x.a = y.a`,
		`select t.a from t inner many to exact one join (select a, d from u) s on t.a = s.a`,
		`select t.a from (t inner many to exact one join u on t.a = u.a)`,
	}
	for _, q := range forms {
		t.Run(q, func(t *testing.T) {
			check(t, mustBind(t, cat, q), q)
		})
	}

	t.Run("view-body", func(t *testing.T) {
		body, err := sql.ParseQuery(`select t.a from t inner many to exact one join u on t.a = u.a`)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.CreateView(&catalog.ViewDef{Name: "tu", Query: body}); err != nil {
			t.Fatal(err)
		}
		q := `select a from tu`
		check(t, mustBind(t, cat, q), q)
	})
}
