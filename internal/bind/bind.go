// Package bind translates parsed SQL into the logical plan algebra:
// name resolution, view inlining (VDM views nest up to depth 24 in the
// paper; the binder unfolds them completely), expression-macro expansion
// (§7.2), DAC filter injection (§3), aggregate extraction, and type
// inference.
package bind

import (
	"fmt"
	"strings"

	"vdm/internal/catalog"
	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// MaxViewDepth bounds view nesting (the paper reports a maximum nesting
// depth of 24 in the production VDM; 64 leaves ample headroom while
// catching definition cycles).
const MaxViewDepth = 64

// Binder translates statements for one query.
type Binder struct {
	cat  *catalog.Catalog
	ctx  *plan.Context
	user string
}

// New returns a binder. user is the session user for CURRENT_USER() and
// DAC policy injection; it may be empty.
func New(cat *catalog.Catalog, user string) *Binder {
	return &Binder{cat: cat, ctx: plan.NewContext(), user: user}
}

// Context returns the column context produced by binding.
func (b *Binder) Context() *plan.Context { return b.ctx }

// scopeCol is one visible column during name resolution.
type scopeCol struct {
	qualifier string // lower-cased alias or relation name; "" if none
	name      string // lower-cased column name
	display   string // original spelling
	id        types.ColumnID
	typ       types.Type
}

// scope is the name-resolution environment of one SELECT. outer chains
// to an enclosing query's scope for correlated subqueries.
type scope struct {
	cols []scopeCol
	// macros available from views in FROM: upper-cased name -> definition
	macros map[string]sql.Expr
	outer  *scope
}

func (s *scope) addMacros(m map[string]sql.Expr) {
	if len(m) == 0 {
		return
	}
	if s.macros == nil {
		s.macros = make(map[string]sql.Expr)
	}
	for k, v := range m {
		s.macros[strings.ToUpper(k)] = v
	}
}

// resolve finds a column by (optional) qualifier and name.
func (s *scope) resolve(qualifier, name string) (scopeCol, error) {
	q := strings.ToLower(qualifier)
	n := strings.ToLower(name)
	var found []scopeCol
	for _, c := range s.cols {
		if c.name != n {
			continue
		}
		if q != "" && c.qualifier != q {
			continue
		}
		found = append(found, c)
	}
	switch len(found) {
	case 0:
		if s.outer != nil {
			return s.outer.resolve(qualifier, name)
		}
		if qualifier != "" {
			return scopeCol{}, fmt.Errorf("bind: column %s.%s not found", qualifier, name)
		}
		return scopeCol{}, fmt.Errorf("bind: column %s not found", name)
	case 1:
		return found[0], nil
	default:
		return scopeCol{}, fmt.Errorf("bind: column reference %s is ambiguous", name)
	}
}

// BindQuery binds a query body and returns the plan.
func (b *Binder) BindQuery(q sql.QueryExpr) (*plan.Plan, error) {
	node, names, err := b.bindQueryExpr(q, 0, nil)
	if err != nil {
		return nil, err
	}
	return &plan.Plan{Ctx: b.ctx, Root: node, OutNames: names}, nil
}

func (b *Binder) bindQueryExpr(q sql.QueryExpr, depth int, outer *scope) (plan.Node, []string, error) {
	switch q := q.(type) {
	case *sql.Select:
		return b.bindSelect(q, depth, outer)
	case *sql.UnionAll:
		return b.bindUnionAll(q, depth, outer)
	}
	return nil, nil, fmt.Errorf("bind: unknown query expression %T", q)
}

func (b *Binder) bindUnionAll(u *sql.UnionAll, depth int, outer *scope) (plan.Node, []string, error) {
	// Flatten nested UNION ALL into one n-ary node (the paper's Figure 3
	// has a five-way UNION ALL).
	var flat func(q sql.QueryExpr) []sql.QueryExpr
	flat = func(q sql.QueryExpr) []sql.QueryExpr {
		if un, ok := q.(*sql.UnionAll); ok {
			return append(flat(un.Left), flat(un.Right)...)
		}
		return []sql.QueryExpr{q}
	}
	parts := flat(u)
	var children []plan.Node
	var names []string
	for i, p := range parts {
		child, childNames, err := b.bindQueryExpr(p, depth, outer)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			names = childNames
		} else if len(childNames) != len(names) {
			return nil, nil, fmt.Errorf("bind: UNION ALL children have %d and %d columns", len(names), len(childNames))
		}
		children = append(children, child)
	}
	first := children[0].Columns()
	outCols := make([]types.ColumnID, len(first))
	for i, id := range first {
		outCols[i] = b.ctx.NewColumn(names[i], b.ctx.Type(id))
	}
	return &plan.UnionAll{Children: children, Cols: outCols}, names, nil
}

func (b *Binder) bindSelect(sel *sql.Select, depth int, outer *scope) (plan.Node, []string, error) {
	if depth > MaxViewDepth {
		return nil, nil, fmt.Errorf("bind: view nesting exceeds %d (definition cycle?)", MaxViewDepth)
	}
	var node plan.Node
	sc := &scope{outer: outer}
	if sel.From != nil {
		var err error
		node, err = b.bindTableExpr(sel.From, sc, depth)
		if err != nil {
			return nil, nil, err
		}
	} else {
		node = &plan.Values{Rows: [][]plan.Expr{{}}}
	}

	// WHERE: subquery predicates (EXISTS / IN) at the top conjunct level
	// are unnested into semi/anti joins; the rest becomes a filter.
	if sel.Where != nil {
		var err error
		node, err = b.bindWhere(sel.Where, node, sc, depth)
		if err != nil {
			return nil, nil, err
		}
	}

	// Expand stars and macros in the select items.
	items, err := b.expandItems(sel, sc)
	if err != nil {
		return nil, nil, err
	}

	// Aggregate query?
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if exprHasAggregate(it.expr) {
			hasAgg = true
		}
	}
	var outNode plan.Node
	var outNames []string
	var outIDs []types.ColumnID
	if hasAgg {
		outNode, outIDs, outNames, err = b.bindAggregate(sel, items, node, sc)
		if err != nil {
			return nil, nil, err
		}
	} else {
		// Plain projection.
		var cols []plan.ProjCol
		for _, it := range items {
			e := it.pre
			if e == nil {
				var err error
				e, err = b.bindExpr(it.expr, sc, false)
				if err != nil {
					return nil, nil, err
				}
			}
			id := b.ctx.NewColumn(it.name, e.Type())
			cols = append(cols, plan.ProjCol{ID: id, Expr: e})
			outIDs = append(outIDs, id)
			outNames = append(outNames, it.name)
		}
		outNode = &plan.Project{Input: node, Cols: cols}
	}

	if sel.Distinct {
		outNode = &plan.Distinct{Input: outNode}
	}

	// ORDER BY: keys may reference output aliases or input columns.
	if len(sel.OrderBy) > 0 {
		outNode, err = b.bindOrderBy(sel.OrderBy, outNode, outIDs, outNames, sc, hasAgg)
		if err != nil {
			return nil, nil, err
		}
	}

	// LIMIT / OFFSET (constant expressions only).
	if sel.Limit != nil || sel.Offset != nil {
		lim := &plan.Limit{Input: outNode, Count: -1}
		if sel.Limit != nil {
			n, err := constInt(sel.Limit)
			if err != nil {
				return nil, nil, fmt.Errorf("bind: LIMIT: %v", err)
			}
			lim.Count = n
		}
		if sel.Offset != nil {
			n, err := constInt(sel.Offset)
			if err != nil {
				return nil, nil, fmt.Errorf("bind: OFFSET: %v", err)
			}
			lim.Offset = n
		}
		outNode = lim
	}
	return outNode, outNames, nil
}

func constInt(e sql.Expr) (int64, error) {
	lit, ok := e.(*sql.Lit)
	if !ok || lit.Val.Typ != types.TInt {
		return 0, fmt.Errorf("expected integer constant")
	}
	return lit.Val.Int(), nil
}

// boundItem is a select item after star/macro expansion. Star-expanded
// items are pre-bound (pre != nil) so duplicate column names in the
// scope cannot make them ambiguous.
type boundItem struct {
	expr sql.Expr
	name string
	pre  plan.Expr
}

func (b *Binder) expandItems(sel *sql.Select, sc *scope) ([]boundItem, error) {
	var items []boundItem
	for _, it := range sel.Items {
		if it.Star {
			q := strings.ToLower(it.StarTable)
			n := 0
			for _, c := range sc.cols {
				if q != "" && c.qualifier != q {
					continue
				}
				items = append(items, boundItem{
					expr: &sql.ColRef{Table: c.qualifier, Name: c.display},
					name: c.display,
					pre:  &plan.ColRef{ID: c.id, Typ: c.typ},
				})
				n++
			}
			if n == 0 {
				if q != "" {
					return nil, fmt.Errorf("bind: %s.* matches no columns", it.StarTable)
				}
				return nil, fmt.Errorf("bind: * with empty FROM scope")
			}
			continue
		}
		expr, err := b.expandMacros(it.Expr, sc)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = itemName(it.Expr)
		}
		items = append(items, boundItem{expr: expr, name: name})
	}
	return items, nil
}

// itemName derives a display name for an unaliased item.
func itemName(e sql.Expr) string {
	switch e := e.(type) {
	case *sql.ColRef:
		return e.Name
	case *sql.FuncCall:
		return strings.ToLower(e.Name)
	case *sql.MacroRef:
		return strings.ToLower(e.Name)
	case *sql.AllowPrecisionLoss:
		return itemName(e.E)
	}
	return "expr"
}

// expandMacros replaces EXPRESSION_MACRO(name) references with the
// defining expression from a view in the FROM scope (§7.2).
func (b *Binder) expandMacros(e sql.Expr, sc *scope) (sql.Expr, error) {
	var rewrite func(e sql.Expr) (sql.Expr, error)
	rewrite = func(e sql.Expr) (sql.Expr, error) {
		switch e := e.(type) {
		case *sql.MacroRef:
			def, ok := sc.macros[strings.ToUpper(e.Name)]
			if !ok {
				return nil, fmt.Errorf("bind: expression macro %s is not defined by any view in FROM", e.Name)
			}
			return def, nil
		case *sql.BinOp:
			l, err := rewrite(e.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(e.R)
			if err != nil {
				return nil, err
			}
			return &sql.BinOp{Op: e.Op, L: l, R: r}, nil
		case *sql.UnOp:
			x, err := rewrite(e.E)
			if err != nil {
				return nil, err
			}
			return &sql.UnOp{Op: e.Op, E: x}, nil
		case *sql.IsNull:
			x, err := rewrite(e.E)
			if err != nil {
				return nil, err
			}
			return &sql.IsNull{E: x, Not: e.Not}, nil
		case *sql.InList:
			x, err := rewrite(e.E)
			if err != nil {
				return nil, err
			}
			out := &sql.InList{E: x, Not: e.Not}
			for _, v := range e.List {
				vv, err := rewrite(v)
				if err != nil {
					return nil, err
				}
				out.List = append(out.List, vv)
			}
			return out, nil
		case *sql.Between:
			x, err := rewrite(e.E)
			if err != nil {
				return nil, err
			}
			lo, err := rewrite(e.Lo)
			if err != nil {
				return nil, err
			}
			hi, err := rewrite(e.Hi)
			if err != nil {
				return nil, err
			}
			return &sql.Between{E: x, Lo: lo, Hi: hi}, nil
		case *sql.FuncCall:
			out := &sql.FuncCall{Name: e.Name, Distinct: e.Distinct, Star: e.Star}
			for _, a := range e.Args {
				aa, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				out.Args = append(out.Args, aa)
			}
			return out, nil
		case *sql.CaseExpr:
			out := &sql.CaseExpr{}
			for _, w := range e.Whens {
				c, err := rewrite(w.Cond)
				if err != nil {
					return nil, err
				}
				t, err := rewrite(w.Then)
				if err != nil {
					return nil, err
				}
				out.Whens = append(out.Whens, sql.CaseWhen{Cond: c, Then: t})
			}
			if e.Else != nil {
				el, err := rewrite(e.Else)
				if err != nil {
					return nil, err
				}
				out.Else = el
			}
			return out, nil
		case *sql.AllowPrecisionLoss:
			x, err := rewrite(e.E)
			if err != nil {
				return nil, err
			}
			return &sql.AllowPrecisionLoss{E: x}, nil
		default:
			return e, nil
		}
	}
	return rewrite(e)
}

// bindOrderBy sorts the projected result. Keys resolve first against
// output aliases, then (for non-aggregate queries) against the input
// scope, adding hidden sort columns as needed.
func (b *Binder) bindOrderBy(order []sql.OrderItem, node plan.Node, outIDs []types.ColumnID, outNames []string, sc *scope, aggregated bool) (plan.Node, error) {
	var keys []plan.SortKey
	var hidden []plan.ProjCol
	for _, o := range order {
		// Alias reference? Qualified references fall back to matching the
		// bare column name against the output (SQL engines commonly allow
		// ORDER BY d.name when the item list projects d.name).
		if cr, ok := o.Expr.(*sql.ColRef); ok {
			found := -1
			for i, n := range outNames {
				if strings.EqualFold(n, cr.Name) {
					found = i
					break
				}
			}
			if found >= 0 && (cr.Table == "" || aggregated) {
				keys = append(keys, plan.SortKey{Col: outIDs[found], Desc: o.Desc})
				continue
			}
		}
		// Positional reference (ORDER BY 2)?
		if lit, ok := o.Expr.(*sql.Lit); ok && lit.Val.Typ == types.TInt {
			pos := int(lit.Val.Int())
			if pos < 1 || pos > len(outIDs) {
				return nil, fmt.Errorf("bind: ORDER BY position %d out of range", pos)
			}
			keys = append(keys, plan.SortKey{Col: outIDs[pos-1], Desc: o.Desc})
			continue
		}
		if aggregated {
			return nil, fmt.Errorf("bind: ORDER BY expression %s must reference an output column in an aggregate query", sql.ExprString(o.Expr))
		}
		e, err := b.bindExpr(o.Expr, sc, false)
		if err != nil {
			return nil, err
		}
		id := b.ctx.NewColumn("__sort", e.Type())
		hidden = append(hidden, plan.ProjCol{ID: id, Expr: e})
		keys = append(keys, plan.SortKey{Col: id, Desc: o.Desc})
	}
	if len(hidden) > 0 {
		// Hidden sort keys cannot be computed above the projection (its
		// source columns are gone), so widen the projection, sort, then
		// strip the hidden columns with a pass-through projection.
		proj, ok := node.(*plan.Project)
		if !ok {
			return nil, fmt.Errorf("bind: ORDER BY expression requires a plain (non-DISTINCT) projection")
		}
		wide := &plan.Project{Input: proj.Input, Cols: append(append([]plan.ProjCol{}, proj.Cols...), hidden...)}
		sorted := &plan.Sort{Input: wide, Keys: keys}
		var strip []plan.ProjCol
		for _, c := range proj.Cols {
			id := b.ctx.NewColumn(b.ctx.Name(c.ID), b.ctx.Type(c.ID))
			strip = append(strip, plan.ProjCol{ID: id, Expr: &plan.ColRef{ID: c.ID, Typ: b.ctx.Type(c.ID)}})
		}
		return &plan.Project{Input: sorted, Cols: strip}, nil
	}
	return &plan.Sort{Input: node, Keys: keys}, nil
}
