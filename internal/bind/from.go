package bind

import (
	"fmt"
	"strings"

	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// bindTableExpr binds a FROM item, appending its columns to sc.
func (b *Binder) bindTableExpr(te sql.TableExpr, sc *scope, depth int) (plan.Node, error) {
	switch te := te.(type) {
	case *sql.TableRef:
		return b.bindTableRef(te, sc, depth)
	case *sql.SubqueryRef:
		node, names, err := b.bindQueryExpr(te.Query, depth+1, nil)
		if err != nil {
			return nil, err
		}
		qual := strings.ToLower(te.Alias)
		cols := node.Columns()
		for i, id := range cols {
			sc.cols = append(sc.cols, scopeCol{
				qualifier: qual,
				name:      strings.ToLower(names[i]),
				display:   names[i],
				id:        id,
				typ:       b.ctx.Type(id),
			})
		}
		return node, nil
	case *sql.JoinExpr:
		return b.bindJoin(te, sc, depth)
	}
	return nil, fmt.Errorf("bind: unknown table expression %T", te)
}

func (b *Binder) bindJoin(j *sql.JoinExpr, sc *scope, depth int) (plan.Node, error) {
	left, err := b.bindTableExpr(j.Left, sc, depth)
	if err != nil {
		return nil, err
	}
	leftEnd := len(sc.cols)
	right, err := b.bindTableExpr(j.Right, sc, depth)
	if err != nil {
		return nil, err
	}
	_ = leftEnd
	var kind plan.JoinKind
	switch j.Kind {
	case sql.JoinInner:
		kind = plan.InnerJoin
	case sql.JoinLeftOuter:
		kind = plan.LeftOuterJoin
	case sql.JoinCross:
		kind = plan.CrossJoin
	}
	join := &plan.Join{Kind: kind, Left: left, Right: right, Card: j.Card, CaseJoin: j.CaseJoin}
	if j.On != nil {
		cond, err := b.bindExpr(j.On, sc, false)
		if err != nil {
			return nil, err
		}
		if cond.Type() != types.TBool {
			return nil, fmt.Errorf("bind: join condition must be boolean")
		}
		join.Cond = cond
	} else if kind != plan.CrossJoin {
		return nil, fmt.Errorf("bind: %s requires ON", j.Kind)
	}
	return join, nil
}

// bindTableRef resolves a name to a base table scan or an inlined view.
func (b *Binder) bindTableRef(tr *sql.TableRef, sc *scope, depth int) (plan.Node, error) {
	qual := strings.ToLower(tr.Alias)
	if qual == "" {
		qual = strings.ToLower(tr.Name)
	}

	// Base table?
	if tbl, ok := b.cat.Table(tr.Name); ok {
		info := &plan.TableInfo{Name: tbl.Name(), Schema: tbl.Schema()}
		for _, k := range tbl.Keys() {
			info.Keys = append(info.Keys, plan.KeyInfo{Columns: k.Columns, Primary: k.Primary})
		}
		for _, fk := range tbl.ForeignKeys() {
			info.FKs = append(info.FKs, plan.FKInfo{Columns: fk.Columns, RefTable: fk.RefTable})
		}
		st := tbl.StatsSnapshot()
		info.Stats = &st
		scan := &plan.Scan{Info: info, Instance: b.ctx.NewInstance()}
		for ord, col := range info.Schema {
			id := b.ctx.NewColumn(col.Name, col.Type)
			scan.Cols = append(scan.Cols, id)
			scan.Ords = append(scan.Ords, ord)
			sc.cols = append(sc.cols, scopeCol{
				qualifier: qual,
				name:      strings.ToLower(col.Name),
				display:   col.Name,
				id:        id,
				typ:       col.Type,
			})
		}
		return scan, nil
	}

	// View?
	if view, ok := b.cat.View(tr.Name); ok {
		if depth+1 > MaxViewDepth {
			return nil, fmt.Errorf("bind: view nesting exceeds %d at %s", MaxViewDepth, tr.Name)
		}
		node, names, err := b.bindQueryExpr(view.Query, depth+1, nil)
		if err != nil {
			return nil, fmt.Errorf("bind: in view %s: %v", view.Name, err)
		}
		// Local scope for DAC filter resolution over the view's output.
		viewScope := &scope{}
		cols := node.Columns()
		for i, id := range cols {
			c := scopeCol{
				qualifier: strings.ToLower(view.Name),
				name:      strings.ToLower(names[i]),
				display:   names[i],
				id:        id,
				typ:       b.ctx.Type(id),
			}
			viewScope.cols = append(viewScope.cols, c)
		}
		// Inject DAC policies (§3): each policy filter is ANDed above the
		// view body with CURRENT_USER() resolved to the session user.
		for _, p := range b.cat.DACFor(view.Name) {
			cond, err := b.bindExpr(p.Filter, viewScope, false)
			if err != nil {
				return nil, fmt.Errorf("bind: DAC policy %s on %s: %v", p.Name, view.Name, err)
			}
			node = &plan.Filter{Input: node, Cond: cond}
		}
		for i, id := range cols {
			sc.cols = append(sc.cols, scopeCol{
				qualifier: qual,
				name:      strings.ToLower(names[i]),
				display:   names[i],
				id:        id,
				typ:       b.ctx.Type(id),
			})
		}
		sc.addMacros(view.Macros)
		return node, nil
	}

	return nil, fmt.Errorf("bind: table or view %s does not exist", tr.Name)
}
