package bind

import (
	"strings"
	"testing"

	"vdm/internal/catalog"
	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/storage"
	"vdm/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	db := storage.NewDB()
	cat := catalog.New(db)
	mk := func(name string, cols ...types.Column) {
		tbl, err := db.CreateTable(name, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.AddKey(storage.KeyConstraint{Name: name + "_pk", Columns: []int{0}, Primary: true}); err != nil {
			t.Fatal(err)
		}
	}
	mk("t",
		types.Column{Name: "a", Type: types.TInt, NotNull: true},
		types.Column{Name: "b", Type: types.TString},
		types.Column{Name: "c", Type: types.TDecimal})
	mk("u",
		types.Column{Name: "a", Type: types.TInt, NotNull: true},
		types.Column{Name: "d", Type: types.TFloat})
	return cat
}

func bindQ(t *testing.T, cat *catalog.Catalog, q string) (*plan.Plan, error) {
	t.Helper()
	body, err := sql.ParseQuery(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(cat, "tester").BindQuery(body)
}

func mustBind(t *testing.T, cat *catalog.Catalog, q string) *plan.Plan {
	t.Helper()
	p, err := bindQ(t, cat, q)
	if err != nil {
		t.Fatalf("bind %q: %v", q, err)
	}
	return p
}

func TestBindResolvesQualifiedAndAliased(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select x.a, x.b from t x`)
	if len(p.OutNames) != 2 || p.OutNames[0] != "a" {
		t.Fatalf("out = %v", p.OutNames)
	}
}

func TestBindAmbiguity(t *testing.T) {
	cat := testCatalog(t)
	if _, err := bindQ(t, cat, `select a from t inner join u on t.a = u.a`); err == nil {
		t.Fatal("unqualified ambiguous column should fail")
	}
	p := mustBind(t, cat, `select t.a from t inner join u on t.a = u.a`)
	if len(p.OutNames) != 1 {
		t.Fatal("qualified resolution failed")
	}
}

func TestBindUnknowns(t *testing.T) {
	cat := testCatalog(t)
	for _, q := range []string{
		`select nope from t`,
		`select t.nope from t`,
		`select a from missing_table`,
		`select z.a from t`,
		`select a from t where b`,           // non-boolean where? b is string
		`select sum(b) from t`,              // SUM over string
		`select a, sum(c) from t`,           // a not grouped
		`select * from t group by a`,        // star over non-grouped columns
		`select expression_macro(m) from t`, // undefined macro
	} {
		if _, err := bindQ(t, cat, q); err == nil {
			t.Errorf("bind(%q) should fail", q)
		}
	}
}

func TestBindStarExpansion(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select * from t inner join u on t.a = u.a`)
	if len(p.OutNames) != 5 {
		t.Fatalf("star width = %d", len(p.OutNames))
	}
	p = mustBind(t, cat, `select u.* from t inner join u on t.a = u.a`)
	if len(p.OutNames) != 2 || p.OutNames[1] != "d" {
		t.Fatalf("qualified star = %v", p.OutNames)
	}
}

func TestBindGroupByExpression(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select a + 1 k, count(*) from t group by a + 1`)
	gb := findGroupBy(p.Root)
	if gb == nil {
		t.Fatal("no GroupBy in plan")
	}
	if len(gb.GroupCols) != 1 || len(gb.Aggs) != 1 {
		t.Fatalf("groupby = %+v", gb)
	}
	// The computed group expression lives in a projection below.
	if _, ok := gb.Input.(*plan.Project); !ok {
		t.Fatalf("expected pre-projection, got %T", gb.Input)
	}
}

func TestBindHavingAndDedupAggs(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select b, sum(c) from t group by b having sum(c) > 10`)
	gb := findGroupBy(p.Root)
	if gb == nil {
		t.Fatal("no GroupBy")
	}
	// sum(c) in items and having share one aggregate.
	if len(gb.Aggs) != 1 {
		t.Fatalf("aggs = %d, want deduplicated 1", len(gb.Aggs))
	}
	// HAVING becomes a filter above the GroupBy.
	foundFilter := false
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if f, ok := n.(*plan.Filter); ok {
			if _, ok := f.Input.(*plan.GroupBy); ok {
				foundFilter = true
			}
		}
		for _, c := range n.Inputs() {
			walk(c)
		}
	}
	walk(p.Root)
	if !foundFilter {
		t.Fatal("HAVING filter missing")
	}
}

func TestBindOrderByAliasAndPosition(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select a total from t order by total desc`)
	if _, ok := p.Root.(*plan.Sort); !ok {
		t.Fatalf("root = %T", p.Root)
	}
	p = mustBind(t, cat, `select a, b from t order by 2`)
	if _, ok := p.Root.(*plan.Sort); !ok {
		t.Fatalf("root = %T", p.Root)
	}
	if _, err := bindQ(t, cat, `select a from t order by 5`); err == nil {
		t.Fatal("out-of-range position should fail")
	}
}

func TestBindOrderByHiddenColumn(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select a from t order by c * 2`)
	// Hidden sort key: root must still expose exactly one column.
	if len(p.Root.Columns()) != 1 {
		t.Fatalf("root columns = %d", len(p.Root.Columns()))
	}
}

func TestBindViewInliningAndDepthGuard(t *testing.T) {
	cat := testCatalog(t)
	// Self-referential view → cycle -> depth error.
	body, _ := sql.ParseQuery(`select * from vloop`)
	if err := cat.CreateView(&catalog.ViewDef{Name: "vloop", Query: body}); err != nil {
		t.Fatal(err)
	}
	if _, err := bindQ(t, cat, `select * from vloop`); err == nil ||
		!strings.Contains(err.Error(), "nesting") {
		t.Fatal("view cycle must be caught by the depth guard")
	}
}

func TestBindCurrentUser(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select current_user() from t`)
	proj := p.Root.(*plan.Project)
	c, ok := proj.Cols[0].Expr.(*plan.Const)
	if !ok || c.Val.Str() != "tester" {
		t.Fatalf("current_user = %v", proj.Cols[0].Expr)
	}
}

func TestBindUnionColumnCountMismatch(t *testing.T) {
	cat := testCatalog(t)
	if _, err := bindQ(t, cat, `select a, b from t union all select a from u`); err == nil {
		t.Fatal("union arity mismatch should fail")
	}
}

func TestBindConstExprAndTableRowBinder(t *testing.T) {
	cat := testCatalog(t)
	b := New(cat, "")
	e, err := sql.ParseExpr(`1 + 2`)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := b.BindConstExpr(e)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Type() != types.TInt {
		t.Fatalf("type = %v", pe.Type())
	}
	binder, cols, err := New(cat, "").TableRowBinder("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("cols = %d", len(cols))
	}
	we, err := sql.ParseExpr(`a > 1 and b = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binder(we); err != nil {
		t.Fatal(err)
	}
}

func findGroupBy(n plan.Node) *plan.GroupBy {
	if g, ok := n.(*plan.GroupBy); ok {
		return g
	}
	for _, c := range n.Inputs() {
		if g := findGroupBy(c); g != nil {
			return g
		}
	}
	return nil
}

func TestBindCardSpecAndCaseJoinSurvive(t *testing.T) {
	cat := testCatalog(t)
	p := mustBind(t, cat, `select t.a from t left outer many to one case join u on t.a = u.a`)
	var j *plan.Join
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		if jj, ok := n.(*plan.Join); ok {
			j = jj
		}
		for _, c := range n.Inputs() {
			walk(c)
		}
	}
	walk(p.Root)
	if j == nil || !j.CaseJoin || j.Card.Right != sql.CardOne {
		t.Fatalf("join metadata lost: %+v", j)
	}
}
