package bind

import (
	"fmt"

	"vdm/internal/plan"
	"vdm/internal/sql"
	"vdm/internal/types"
)

// bindWhere processes a WHERE clause: EXISTS and IN-subquery predicates
// appearing as top-level conjuncts are unnested into semi/anti joins
// (the "unnesting nested queries" rewrite the paper attributes to the
// target system's heuristic phase, §2.2); remaining conjuncts form a
// filter.
func (b *Binder) bindWhere(where sql.Expr, node plan.Node, sc *scope, depth int) (plan.Node, error) {
	var plain []plan.Expr
	for _, conj := range sqlConjuncts(where) {
		sub, not := stripNot(conj)
		switch e := sub.(type) {
		case *sql.Exists:
			joined, err := b.bindSubqueryJoin(node, sc, depth, e.Query, nil, e.Not != not, false)
			if err != nil {
				return nil, err
			}
			node = joined
			continue
		case *sql.InSubquery:
			joined, err := b.bindSubqueryJoin(node, sc, depth, e.Query, e.E, e.Not != not, true)
			if err != nil {
				return nil, err
			}
			node = joined
			continue
		}
		cond, err := b.bindExpr(conj, sc, false)
		if err != nil {
			return nil, err
		}
		if cond.Type() != types.TBool && cond.Type() != types.TNull {
			return nil, fmt.Errorf("bind: WHERE must be boolean, got %s", cond.Type())
		}
		plain = append(plain, cond)
	}
	if len(plain) > 0 {
		node = &plan.Filter{Input: node, Cond: plan.AndAll(plain)}
	}
	return node, nil
}

// sqlConjuncts splits an AND tree at the SQL level.
func sqlConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinOp); ok && b.Op == "AND" {
		return append(sqlConjuncts(b.L), sqlConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// stripNot unwraps stacked NOT operators.
func stripNot(e sql.Expr) (sql.Expr, bool) {
	not := false
	for {
		u, ok := e.(*sql.UnOp)
		if !ok || u.Op != "NOT" {
			return e, not
		}
		not = !not
		e = u.E
	}
}

// bindSubqueryJoin binds the subquery with the outer scope visible
// (correlation), lifts correlated filter conjuncts into the join
// condition, and attaches a semi or anti join to node. inExpr is the
// left-hand expression for IN subqueries (nil for EXISTS); nullAware
// selects NOT IN's three-valued anti-join semantics.
func (b *Binder) bindSubqueryJoin(node plan.Node, sc *scope, depth int, q sql.QueryExpr, inExpr sql.Expr, anti, isIn bool) (plan.Node, error) {
	outerCols := plan.ColumnsOf(node)
	sub, names, err := b.bindQueryExpr(q, depth+1, sc)
	if err != nil {
		return nil, fmt.Errorf("bind: in subquery: %v", err)
	}
	sub, lifted, err := b.liftCorrelated(sub, outerCols)
	if err != nil {
		return nil, err
	}
	// Any remaining outer reference is in an unsupported position.
	if leak := subtreeOuterRefs(sub, outerCols); !leak.Empty() {
		return nil, fmt.Errorf("bind: correlated subquery reference is only supported in top-level WHERE conjuncts of the subquery")
	}
	// Lifted conjuncts may reference subquery columns its projection
	// dropped (e.g. `select 1 from o where o.cid = c.id`): widen the
	// subquery's projections to expose them for the join condition.
	var needed types.ColSet
	for _, conj := range lifted {
		needed = needed.Union(plan.ColsUsed(conj))
	}
	needed = needed.Difference(outerCols).Difference(plan.ColumnsOf(sub))
	if !needed.Empty() {
		if !b.exposeColumns(sub, needed) {
			return nil, fmt.Errorf("bind: correlated subquery column is not reachable through the subquery's projections")
		}
	}
	conds := lifted
	if isIn {
		if len(names) != 1 {
			return nil, fmt.Errorf("bind: IN subquery must return exactly one column, got %d", len(names))
		}
		left, err := b.bindExpr(inExpr, sc, false)
		if err != nil {
			return nil, err
		}
		right := sub.Columns()[0]
		conds = append([]plan.Expr{&plan.Bin{
			Op: "=", L: left,
			R:   &plan.ColRef{ID: right, Typ: b.ctx.Type(right)},
			Typ: types.TBool,
		}}, conds...)
	}
	kind := plan.SemiJoin
	if anti {
		kind = plan.AntiJoin
	}
	join := &plan.Join{Kind: kind, Left: node, Right: sub, Cond: plan.AndAll(conds)}
	if anti && isIn {
		join.AntiNullAware = true
	}
	if join.Cond == nil {
		join.Cond = plan.TrueExpr()
	}
	return join, nil
}

// liftCorrelated removes filter conjuncts referencing outer columns
// from the subquery's filter spine (above grouping/distinct/limit/union
// boundaries, and through inner joins) and returns them for use in the
// join condition.
func (b *Binder) liftCorrelated(n plan.Node, outerCols types.ColSet) (plan.Node, []plan.Expr, error) {
	switch n := n.(type) {
	case *plan.Filter:
		var keep, lift []plan.Expr
		for _, conj := range plan.Conjuncts(n.Cond) {
			if plan.ColsUsed(conj).Intersects(outerCols) {
				lift = append(lift, conj)
			} else {
				keep = append(keep, conj)
			}
		}
		input, deeper, err := b.liftCorrelated(n.Input, outerCols)
		if err != nil {
			return nil, nil, err
		}
		lift = append(lift, deeper...)
		if len(keep) == 0 {
			return input, lift, nil
		}
		n.Input = input
		n.Cond = plan.AndAll(keep)
		return n, lift, nil
	case *plan.Project:
		// Projections pass through; their expressions must not be
		// correlated (checked by the caller's leak test).
		input, lift, err := b.liftCorrelated(n.Input, outerCols)
		if err != nil {
			return nil, nil, err
		}
		n.Input = input
		return n, lift, nil
	case *plan.Join:
		if n.Kind == plan.InnerJoin || n.Kind == plan.CrossJoin {
			left, liftL, err := b.liftCorrelated(n.Left, outerCols)
			if err != nil {
				return nil, nil, err
			}
			right, liftR, err := b.liftCorrelated(n.Right, outerCols)
			if err != nil {
				return nil, nil, err
			}
			n.Left, n.Right = left, right
			return n, append(liftL, liftR...), nil
		}
		return n, nil, nil
	}
	return n, nil, nil
}

// exposeColumns widens pass-through operators so that the needed
// columns (defined somewhere in the subtree — at bind time only
// projections drop columns) appear in n's output. Distinct and GroupBy
// boundaries refuse (exposing extra columns would change semantics).
func (b *Binder) exposeColumns(n plan.Node, needed types.ColSet) bool {
	missing := needed.Difference(plan.ColumnsOf(n))
	if missing.Empty() {
		return true
	}
	switch n := n.(type) {
	case *plan.Project:
		if !b.exposeColumns(n.Input, missing) {
			return false
		}
		missing.ForEach(func(id types.ColumnID) {
			n.Cols = append(n.Cols, plan.ProjCol{ID: id, Expr: &plan.ColRef{ID: id, Typ: b.ctx.Type(id)}})
		})
		return true
	case *plan.Filter:
		return b.exposeColumns(n.Input, missing)
	case *plan.Sort:
		return b.exposeColumns(n.Input, missing)
	case *plan.Limit:
		return b.exposeColumns(n.Input, missing)
	case *plan.Join:
		if n.Kind != plan.InnerJoin && n.Kind != plan.CrossJoin && n.Kind != plan.LeftOuterJoin {
			return false
		}
		var leftMissing, rightMissing types.ColSet
		ok := true
		missing.ForEach(func(id types.ColumnID) {
			switch {
			case colDefinedIn(n.Left, id):
				leftMissing.Add(id)
			case colDefinedIn(n.Right, id):
				rightMissing.Add(id)
			default:
				ok = false
			}
		})
		if !ok {
			return false
		}
		if !leftMissing.Empty() && !b.exposeColumns(n.Left, leftMissing) {
			return false
		}
		if !rightMissing.Empty() && !b.exposeColumns(n.Right, rightMissing) {
			return false
		}
		return true
	}
	return false
}

// colDefinedIn reports whether any node in the subtree outputs the
// column.
func colDefinedIn(n plan.Node, id types.ColumnID) bool {
	for _, c := range n.Columns() {
		if c == id {
			return true
		}
	}
	for _, child := range n.Inputs() {
		if colDefinedIn(child, id) {
			return true
		}
	}
	return false
}

// subtreeOuterRefs returns the outer columns referenced anywhere in the
// subtree's expressions.
func subtreeOuterRefs(n plan.Node, outerCols types.ColSet) types.ColSet {
	var used types.ColSet
	var collect func(e plan.Expr)
	collect = func(e plan.Expr) {
		used = used.Union(plan.ColsUsed(e))
	}
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		switch n := n.(type) {
		case *plan.Project:
			for _, c := range n.Cols {
				collect(c.Expr)
			}
		case *plan.Filter:
			collect(n.Cond)
		case *plan.Join:
			collect(n.Cond)
		case *plan.GroupBy:
			for _, a := range n.Aggs {
				if a.Arg != nil {
					collect(a.Arg)
				}
			}
		case *plan.Values:
			for _, row := range n.Rows {
				for _, e := range row {
					collect(e)
				}
			}
		}
		for _, c := range n.Inputs() {
			walk(c)
		}
	}
	walk(n)
	return used.Intersect(outerCols)
}
