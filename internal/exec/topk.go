package exec

import (
	"fmt"
	"sort"

	"vdm/internal/types"
)

// topKIter fuses ORDER BY + LIMIT into a bounded-memory top-k: instead
// of materializing and sorting the whole input, it keeps the best
// offset+count rows in a max-heap (O(n log k) comparisons, O(k)
// memory). Ties on the sort keys break by input sequence number, which
// makes the result identical to the stable full sort the serial
// sortIter performs.
type topKIter struct {
	input  Iterator
	keys   []sortKeySpec
	offset int64
	count  int64 // >= 0
	gov    *Governance
	acct   memAcct

	rows []types.Row
	pos  int
}

type heapItem struct {
	row types.Row
	seq int
}

func (t *topKIter) Open() error {
	if err := t.input.Open(); err != nil {
		return err
	}
	t.acct = memAcct{gov: t.gov}
	if err := t.gov.point(PointTopK); err != nil {
		return err
	}
	keep := int(t.offset + t.count)
	if keep <= 0 {
		t.rows, t.pos = nil, 0
		return nil
	}
	var cmpErr error
	// after reports whether a sorts after b; the heap keeps the
	// after-most kept row at its root, ready for eviction.
	after := func(a, b heapItem) bool {
		c, err := compareRows(a.row, b.row, t.keys)
		if err != nil && cmpErr == nil {
			cmpErr = err
		}
		if c != 0 {
			return c > 0
		}
		return a.seq > b.seq
	}
	h := make([]heapItem, 0, keep)
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !after(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			m := i
			if l := 2*i + 1; l < len(h) && after(h[l], h[m]) {
				m = l
			}
			if r := 2*i + 2; r < len(h) && after(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	stride := govStride{gov: t.gov}
	for seq := 0; ; seq++ {
		row, ok, err := t.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := stride.tick(); err != nil {
			return err
		}
		item := heapItem{row: row, seq: seq}
		if len(h) < keep {
			// Only heap growth is metered: the heap is bounded at keep
			// rows, replacements reuse the slot.
			if err := t.acct.add(rowBytes(row)); err != nil {
				return err
			}
			h = append(h, item)
			siftUp(len(h) - 1)
		} else if after(h[0], item) {
			h[0] = item
			siftDown()
		}
		if cmpErr != nil {
			return cmpErr
		}
	}
	sort.Slice(h, func(i, j int) bool { return after(h[j], h[i]) })
	if cmpErr != nil {
		return cmpErr
	}
	start := int(t.offset)
	if start > len(h) {
		start = len(h)
	}
	t.rows = make([]types.Row, 0, len(h)-start)
	for _, item := range h[start:] {
		t.rows = append(t.rows, item.row)
	}
	t.pos = 0
	return nil
}

func (t *topKIter) Next() (types.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	row := t.rows[t.pos]
	t.pos++
	return row, true, nil
}

func (t *topKIter) Close() {
	t.input.Close()
	t.acct.close()
	t.rows = nil
}

func (t *topKIter) buildStats() (int64, int64) {
	return rowSetBytes(t.rows)
}

func (t *topKIter) extraStats(st *OpStats) {
	st.Note = fmt.Sprintf("top_k=%d", t.offset+t.count)
}
