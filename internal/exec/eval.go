// Package exec implements the query executor over the columnar store:
// scans, filters, projections, hash joins, hash aggregation, sort,
// limit, union all, and distinct, plus the scalar expression evaluator
// with SQL three-valued logic.
//
// Two execution models share one Iterator contract. The row-at-a-time
// path pulls boxed rows operator by operator; the vectorized path
// (SetVectorize) compiles eligible scan→filter→project fragments,
// aggregations, and hash joins into kernels over fixed-size column
// batches of raw dictionary codes (Batch, types.Vec), adapting back to
// rows at the first ineligible operator. Both paths produce row- and
// order-identical results, serial or morsel-parallel; see
// docs/EXECUTION.md for the model, eligibility rules, and layout.
package exec

import (
	"fmt"
	"math"
	"strings"

	"vdm/internal/decimal"
	"vdm/internal/plan"
	"vdm/internal/types"
)

// EvalFn evaluates an expression against an input row.
type EvalFn func(row types.Row) (types.Value, error)

// Compile translates a bound expression into an evaluator. slots maps
// column IDs to positions in the input row.
func Compile(e plan.Expr, slots map[types.ColumnID]int) (EvalFn, error) {
	switch e := e.(type) {
	case *plan.ColRef:
		slot, ok := slots[e.ID]
		if !ok {
			return nil, fmt.Errorf("exec: column #%d not available in this row", e.ID)
		}
		return func(row types.Row) (types.Value, error) { return row[slot], nil }, nil
	case *plan.Const:
		v := e.Val
		return func(types.Row) (types.Value, error) { return v, nil }, nil
	case *plan.Bin:
		return compileBin(e, slots)
	case *plan.Un:
		inner, err := Compile(e.E, slots)
		if err != nil {
			return nil, err
		}
		if e.Op == "NOT" {
			return func(row types.Row) (types.Value, error) {
				v, err := inner(row)
				if err != nil || v.IsNull() {
					return types.NewNull(types.TBool), err
				}
				return types.NewBool(!v.Bool()), nil
			}, nil
		}
		return func(row types.Row) (types.Value, error) {
			v, err := inner(row)
			if err != nil || v.IsNull() {
				return types.NewNull(v.Typ), err
			}
			switch v.Typ {
			case types.TInt:
				return types.NewInt(-v.Int()), nil
			case types.TFloat:
				return types.NewFloat(-v.Float()), nil
			case types.TDecimal:
				return types.NewDecimal(v.Decimal().Neg()), nil
			}
			return types.Value{}, fmt.Errorf("exec: unary - on %s", v.Typ)
		}, nil
	case *plan.IsNullExpr:
		inner, err := Compile(e.E, slots)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(row types.Row) (types.Value, error) {
			v, err := inner(row)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewBool(v.IsNull() != not), nil
		}, nil
	case *plan.InListExpr:
		inner, err := Compile(e.E, slots)
		if err != nil {
			return nil, err
		}
		var list []EvalFn
		for _, x := range e.List {
			fn, err := Compile(x, slots)
			if err != nil {
				return nil, err
			}
			list = append(list, fn)
		}
		not := e.Not
		return func(row types.Row) (types.Value, error) {
			v, err := inner(row)
			if err != nil {
				return types.Value{}, err
			}
			if v.IsNull() {
				return types.NewNull(types.TBool), nil
			}
			sawNull := false
			for _, fn := range list {
				x, err := fn(row)
				if err != nil {
					return types.Value{}, err
				}
				if x.IsNull() {
					sawNull = true
					continue
				}
				if types.Equal(v, x) {
					return types.NewBool(!not), nil
				}
			}
			if sawNull {
				return types.NewNull(types.TBool), nil
			}
			return types.NewBool(not), nil
		}, nil
	case *plan.Func:
		return compileFunc(e, slots)
	case *plan.Case:
		type arm struct{ cond, then EvalFn }
		var arms []arm
		for _, w := range e.Whens {
			c, err := Compile(w.Cond, slots)
			if err != nil {
				return nil, err
			}
			t, err := Compile(w.Then, slots)
			if err != nil {
				return nil, err
			}
			arms = append(arms, arm{c, t})
		}
		var elseFn EvalFn
		if e.Else != nil {
			var err error
			elseFn, err = Compile(e.Else, slots)
			if err != nil {
				return nil, err
			}
		}
		typ := e.Typ
		return func(row types.Row) (types.Value, error) {
			for _, a := range arms {
				c, err := a.cond(row)
				if err != nil {
					return types.Value{}, err
				}
				if !c.IsNull() && c.Bool() {
					return a.then(row)
				}
			}
			if elseFn != nil {
				return elseFn(row)
			}
			return types.NewNull(typ), nil
		}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T", e)
}

func compileBin(e *plan.Bin, slots map[types.ColumnID]int) (EvalFn, error) {
	l, err := Compile(e.L, slots)
	if err != nil {
		return nil, err
	}
	r, err := Compile(e.R, slots)
	if err != nil {
		return nil, err
	}
	op := e.Op
	switch op {
	case "AND":
		return func(row types.Row) (types.Value, error) {
			a, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			if !a.IsNull() && !a.Bool() {
				return types.NewBool(false), nil
			}
			b, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if !b.IsNull() && !b.Bool() {
				return types.NewBool(false), nil
			}
			if a.IsNull() || b.IsNull() {
				return types.NewNull(types.TBool), nil
			}
			return types.NewBool(true), nil
		}, nil
	case "OR":
		return func(row types.Row) (types.Value, error) {
			a, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			if !a.IsNull() && a.Bool() {
				return types.NewBool(true), nil
			}
			b, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if !b.IsNull() && b.Bool() {
				return types.NewBool(true), nil
			}
			if a.IsNull() || b.IsNull() {
				return types.NewNull(types.TBool), nil
			}
			return types.NewBool(false), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(row types.Row) (types.Value, error) {
			a, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			b, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if a.IsNull() || b.IsNull() {
				return types.NewNull(types.TBool), nil
			}
			c, err := types.Compare(a, b)
			if err != nil {
				return types.Value{}, err
			}
			var res bool
			switch op {
			case "=":
				res = c == 0
			case "<>":
				res = c != 0
			case "<":
				res = c < 0
			case "<=":
				res = c <= 0
			case ">":
				res = c > 0
			case ">=":
				res = c >= 0
			}
			return types.NewBool(res), nil
		}, nil
	case "||":
		return func(row types.Row) (types.Value, error) {
			a, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			b, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if a.IsNull() || b.IsNull() {
				return types.NewNull(types.TString), nil
			}
			return types.NewString(a.String() + b.String()), nil
		}, nil
	case "+", "-", "*", "/":
		resT := e.Typ
		return func(row types.Row) (types.Value, error) {
			a, err := l(row)
			if err != nil {
				return types.Value{}, err
			}
			b, err := r(row)
			if err != nil {
				return types.Value{}, err
			}
			if a.IsNull() || b.IsNull() {
				return types.NewNull(resT), nil
			}
			return Arith(op, a, b)
		}, nil
	}
	return nil, fmt.Errorf("exec: unknown operator %s", op)
}

// Arith performs SQL arithmetic on two non-NULL values with the same
// promotion rules the binder uses for typing.
func Arith(op string, a, b types.Value) (types.Value, error) {
	if a.Typ == types.TFloat || b.Typ == types.TFloat {
		x, y := a.Float(), b.Float()
		switch op {
		case "+":
			return types.NewFloat(x + y), nil
		case "-":
			return types.NewFloat(x - y), nil
		case "*":
			return types.NewFloat(x * y), nil
		case "/":
			if y == 0 {
				return types.Value{}, fmt.Errorf("exec: division by zero")
			}
			return types.NewFloat(x / y), nil
		}
	}
	if a.Typ == types.TDecimal || b.Typ == types.TDecimal {
		x, y := a.Decimal(), b.Decimal()
		switch op {
		case "+":
			return types.NewDecimal(x.Add(y)), nil
		case "-":
			return types.NewDecimal(x.Sub(y)), nil
		case "*":
			return types.NewDecimal(x.Mul(y)), nil
		case "/":
			scale := x.Scale
			if y.Scale > scale {
				scale = y.Scale
			}
			scale += 6
			if scale > decimal.MaxScale {
				scale = decimal.MaxScale
			}
			q, err := x.Div(y, scale)
			if err != nil {
				return types.Value{}, fmt.Errorf("exec: %v", err)
			}
			return types.NewDecimal(q), nil
		}
	}
	if a.Typ == types.TInt && b.Typ == types.TInt {
		x, y := a.Int(), b.Int()
		switch op {
		case "+":
			return types.NewInt(x + y), nil
		case "-":
			return types.NewInt(x - y), nil
		case "*":
			return types.NewInt(x * y), nil
		case "/":
			if y == 0 {
				return types.Value{}, fmt.Errorf("exec: division by zero")
			}
			return types.NewFloat(float64(x) / float64(y)), nil
		}
	}
	return types.Value{}, fmt.Errorf("exec: cannot apply %s to %s and %s", op, a.Typ, b.Typ)
}

func compileFunc(e *plan.Func, slots map[types.ColumnID]int) (EvalFn, error) {
	var args []EvalFn
	for _, a := range e.Args {
		fn, err := Compile(a, slots)
		if err != nil {
			return nil, err
		}
		args = append(args, fn)
	}
	evalArgs := func(row types.Row) ([]types.Value, error) {
		out := make([]types.Value, len(args))
		for i, fn := range args {
			v, err := fn(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	name := e.Name
	typ := e.Typ
	return func(row types.Row) (types.Value, error) {
		vs, err := evalArgs(row)
		if err != nil {
			return types.Value{}, err
		}
		return callScalar(name, typ, vs)
	}, nil
}

// callScalar executes a scalar function on evaluated arguments.
func callScalar(name string, typ types.Type, vs []types.Value) (types.Value, error) {
	switch name {
	case "ROUND":
		if vs[0].IsNull() {
			return types.NewNull(typ), nil
		}
		var s int64
		if len(vs) == 2 {
			if vs[1].IsNull() {
				return types.NewNull(typ), nil
			}
			s = vs[1].Int()
		}
		switch vs[0].Typ {
		case types.TDecimal:
			if s < 0 {
				s = 0
			}
			return types.NewDecimal(vs[0].Decimal().Round(int32(s))), nil
		case types.TFloat:
			p := math.Pow(10, float64(s))
			return types.NewFloat(math.Round(vs[0].Float()*p) / p), nil
		case types.TInt:
			return vs[0], nil
		}
		return types.Value{}, fmt.Errorf("exec: ROUND on %s", vs[0].Typ)
	case "ABS":
		if vs[0].IsNull() {
			return types.NewNull(typ), nil
		}
		switch vs[0].Typ {
		case types.TInt:
			x := vs[0].Int()
			if x < 0 {
				x = -x
			}
			return types.NewInt(x), nil
		case types.TFloat:
			return types.NewFloat(math.Abs(vs[0].Float())), nil
		case types.TDecimal:
			d := vs[0].Decimal()
			if d.Coef < 0 {
				d.Coef = -d.Coef
			}
			return types.NewDecimal(d), nil
		}
		return types.Value{}, fmt.Errorf("exec: ABS on %s", vs[0].Typ)
	case "FLOOR", "CEIL":
		if vs[0].IsNull() {
			return types.NewNull(types.TInt), nil
		}
		f := vs[0].Float()
		if name == "FLOOR" {
			return types.NewInt(int64(math.Floor(f))), nil
		}
		return types.NewInt(int64(math.Ceil(f))), nil
	case "COALESCE":
		for _, v := range vs {
			if !v.IsNull() {
				return v, nil
			}
		}
		return types.NewNull(typ), nil
	case "IFNULL":
		if !vs[0].IsNull() {
			return vs[0], nil
		}
		return vs[1], nil
	case "NULLIF":
		if !vs[0].IsNull() && !vs[1].IsNull() && types.Equal(vs[0], vs[1]) {
			return types.NewNull(typ), nil
		}
		return vs[0], nil
	case "UPPER":
		if vs[0].IsNull() {
			return types.NewNull(types.TString), nil
		}
		return types.NewString(strings.ToUpper(vs[0].Str())), nil
	case "LOWER":
		if vs[0].IsNull() {
			return types.NewNull(types.TString), nil
		}
		return types.NewString(strings.ToLower(vs[0].Str())), nil
	case "LENGTH":
		if vs[0].IsNull() {
			return types.NewNull(types.TInt), nil
		}
		return types.NewInt(int64(len(vs[0].Str()))), nil
	case "SUBSTR":
		if vs[0].IsNull() || vs[1].IsNull() {
			return types.NewNull(types.TString), nil
		}
		s := vs[0].Str()
		start := int(vs[1].Int()) - 1 // SQL SUBSTR is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if len(vs) == 3 {
			if vs[2].IsNull() {
				return types.NewNull(types.TString), nil
			}
			end = start + int(vs[2].Int())
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return types.NewString(s[start:end]), nil
	case "CONCAT":
		var b strings.Builder
		for _, v := range vs {
			if v.IsNull() {
				return types.NewNull(types.TString), nil
			}
			b.WriteString(v.String())
		}
		return types.NewString(b.String()), nil
	case "MOD":
		if vs[0].IsNull() || vs[1].IsNull() {
			return types.NewNull(types.TInt), nil
		}
		if vs[1].Int() == 0 {
			return types.Value{}, fmt.Errorf("exec: MOD by zero")
		}
		return types.NewInt(vs[0].Int() % vs[1].Int()), nil
	case "TO_DECIMAL":
		if vs[0].IsNull() {
			return types.NewNull(types.TDecimal), nil
		}
		var scale int32 = 2
		if len(vs) == 2 && !vs[1].IsNull() {
			scale = int32(vs[1].Int())
		}
		switch vs[0].Typ {
		case types.TDecimal:
			return types.NewDecimal(vs[0].Decimal().Rescale(scale)), nil
		case types.TInt:
			return types.NewDecimal(decimal.FromInt(vs[0].Int()).Rescale(scale)), nil
		case types.TFloat:
			d, err := decimal.Parse(fmt.Sprintf("%.*f", scale, vs[0].Float()))
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDecimal(d), nil
		}
		return types.Value{}, fmt.Errorf("exec: TO_DECIMAL on %s", vs[0].Typ)
	}
	return types.Value{}, fmt.Errorf("exec: unknown function %s", name)
}
