package exec

import "vdm/internal/metrics"

// Metrics aggregates the executor-level counters: how often the
// morsel-driven parallel paths ran and what work they scheduled. All
// fields are atomic; one instance is shared by every Builder the engine
// creates (see Builder.SetMetrics).
type Metrics struct {
	// ParallelPipelines counts fused scan/aggregation pipelines executed
	// by the parallel worker pool.
	ParallelPipelines metrics.Counter
	// MorselsScanned counts morsels scheduled across all parallel
	// pipelines.
	MorselsScanned metrics.Counter
	// PartitionedBuilds counts hash-join builds partitioned across
	// workers.
	PartitionedBuilds metrics.Counter
	// TopKFusions counts LIMIT-over-SORT pairs fused into a bounded
	// top-k heap.
	TopKFusions metrics.Counter
	// VecPipelines counts pipelines executed by the vectorized batch
	// path (serial adapters, batch aggregations, and batch hash joins).
	VecPipelines metrics.Counter
	// VecBatches counts column batches filled by the vectorized path.
	VecBatches metrics.Counter
	// VecFallback* count plan nodes the vectorized executor declined,
	// labeled by the decline reason (plan.VecFallback): an inadmissible
	// expression, an OR tree it cannot compile, an unbounded sort, a
	// union with non-pipeline branches, a DISTINCT (aggregate or set)
	// it cannot key, and the historical analyze×parallel exclusion —
	// kept registered so dashboards can verify the restriction stays
	// lifted (the counter must read 0).
	VecFallbackExpression      metrics.Counter
	VecFallbackOr              metrics.Counter
	VecFallbackSort            metrics.Counter
	VecFallbackUnion           metrics.Counter
	VecFallbackDistinct        metrics.Counter
	VecFallbackAnalyzeParallel metrics.Counter
	// PeakQueryBytes is the high-water mark of any single query's
	// governance-tracked memory since the engine started.
	PeakQueryBytes metrics.Gauge
}

// RegisterWith registers every executor counter in a metrics registry
// under the "exec." prefix.
func (m *Metrics) RegisterWith(r *metrics.Registry) {
	r.RegisterCounter("exec.parallel_pipelines", &m.ParallelPipelines)
	r.RegisterCounter("exec.morsels_scanned", &m.MorselsScanned)
	r.RegisterCounter("exec.partitioned_builds", &m.PartitionedBuilds)
	r.RegisterCounter("exec.topk_fusions", &m.TopKFusions)
	r.RegisterCounter("exec.vec_pipelines", &m.VecPipelines)
	r.RegisterCounter("exec.vec_batches", &m.VecBatches)
	r.RegisterCounter("exec.vec_fallbacks.expression", &m.VecFallbackExpression)
	r.RegisterCounter("exec.vec_fallbacks.or", &m.VecFallbackOr)
	r.RegisterCounter("exec.vec_fallbacks.sort", &m.VecFallbackSort)
	r.RegisterCounter("exec.vec_fallbacks.union", &m.VecFallbackUnion)
	r.RegisterCounter("exec.vec_fallbacks.distinct", &m.VecFallbackDistinct)
	r.RegisterCounter("exec.vec_fallbacks.analyze_parallel", &m.VecFallbackAnalyzeParallel)
	r.Register("exec.peak_query_bytes", m.PeakQueryBytes.Value)
}
