package exec

import (
	"strings"
	"sync/atomic"

	"vdm/internal/decimal"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// Vectorized batch execution. A vecSpec is a fused pipeline fragment —
// a scan with any interleaving of filter and project stages — that
// materializes fixed-size column batches straight from storage
// (FillVecs: typed vectors, raw dictionary codes, null bitmaps) and
// narrows them with a selection vector instead of copying survivors.
// Filter kernels run one tight loop per conjunct per batch; string
// comparisons translate the literal once per batch by memoizing the
// comparison outcome per dictionary code; OR trees evaluate one
// selection vector per branch and merge them by ordered union; computed
// projections run expression kernels (vecexpr.go) that publish new batch
// columns. Governance is checked once per batch (the same granularity as
// the row path's govStride), and the row-iterator adapter (vecRowsIter)
// decodes batches back into rows so every downstream operator — and
// every result — is row- and order-identical to the classic executor.
//
// Dictionary codes are only stable within one batch (a concurrent delta
// merge re-encodes delta rows), so all cross-batch state keys on decoded
// values or Value.AppendKey bytes, and per-code memos are epoch-bumped
// every batch.

// DefaultBatchSize is the rows per column batch when the caller does not
// configure one. It matches the storage zone-map block size, so a batch
// never spans more than two zones.
const DefaultBatchSize = 1024

// Batch is a fixed-size horizontal slice of a table: one typed vector
// per projected column plus an optional selection vector produced by
// filter kernels. When HasSel is set, only the row indexes in Sel are
// live; otherwise all N rows are.
type Batch struct {
	// N is the number of rows materialized in each column vector.
	N int
	// Sel lists the live row indexes in ascending order; valid only
	// when HasSel is true.
	Sel []int32
	// HasSel reports whether a filter narrowed the batch. It is
	// distinct from Sel being empty: a fully-filtered batch has
	// HasSel=true and len(Sel)==0.
	HasSel bool
	// Cols holds one vector per column: the storage-filled columns
	// first, then any computed projection columns.
	Cols []types.Vec
}

// NumRows returns the number of live rows.
func (b *Batch) NumRows() int {
	if b.HasSel {
		return len(b.Sel)
	}
	return b.N
}

// vecStage is one fused pipeline stage above the scan. A Filter node
// compiles to a stage with conjunct kernels; a Project node compiles to
// a stage with computed-column kernels (bare column shuffles need no
// stage work and compile to an empty stage kept for EXPLAIN ANALYZE
// attribution). stages[i] corresponds to nodes[i+1] of the fragment.
type vecStage struct {
	filt  []vecCmp     // filter conjuncts; narrow the selection
	exprs []vecCompute // computed projections; publish batch columns
	stats *OpStats     // per-stage EXPLAIN ANALYZE attribution (nil off)
}

// vecSpec is the shared, immutable description of a batch pipeline
// fragment; per-worker mutable state lives in vecScratch so one spec can
// be executed by many workers concurrently.
type vecSpec struct {
	snap    *storage.Snapshot
	ords    []int              // storage ordinals materialized per batch
	ranges  []storage.ColRange // zone-map pruning, as the row path
	stages  []vecStage         // filter/project stages in plan order
	proj    []int              // batch column per output row position
	numCols int                // len(ords) + computed columns
	nMemos  int                // dictionary-code memo tables needed
	nBufs   int                // scratch selection buffers needed
	nSlots  int                // scratch expression vectors needed
	gov     *Governance
	met     *Metrics

	// scanStats attributes batch fills to the Scan node under EXPLAIN
	// ANALYZE (nil when off or when the scan is the operator statIter
	// wraps). Updated atomically: parallel analyze runs share it.
	scanStats *OpStats
}

// hasFilter reports whether the fragment filters rows.
func (s *vecSpec) hasFilter() bool {
	for i := range s.stages {
		if len(s.stages[i].filt) > 0 {
			return true
		}
	}
	return false
}

// statAdd accumulates per-stage analyze counters. Atomic because one
// spec's stats are shared by all morsel workers.
func statAdd(st *OpStats, rows int64) {
	if st == nil {
		return
	}
	atomic.AddInt64(&st.Rows, rows)
	atomic.AddInt64(&st.Nexts, 1)
}

// vecScratch is one worker's reusable batch state: the visible-position
// buffer, the column batch, selection-vector ping-pong buffers, the
// per-conjunct dictionary-code memo tables, and the expression kernels'
// output vectors and selection scratch.
type vecScratch struct {
	idx        []int
	batch      Batch
	ptrs       []*types.Vec
	allIdx     []int32
	selA, selB []int32
	memos      []codeMemo
	selBufs    [][]int32   // OR-branch and CASE-arm selection scratch
	exprVecs   []types.Vec // expression kernel outputs, by slot
	keyBuf     []byte      // AppendKeyAt composite-key scratch
}

// newVecScratch sizes scratch state for the spec's batch width.
func newVecScratch(s *vecSpec) *vecScratch {
	sc := &vecScratch{}
	sc.batch.Cols = make([]types.Vec, s.numCols)
	sc.ptrs = make([]*types.Vec, len(s.ords))
	for i := range sc.ptrs {
		sc.ptrs[i] = &sc.batch.Cols[i]
	}
	sc.memos = make([]codeMemo, s.nMemos)
	sc.selBufs = make([][]int32, s.nBufs)
	sc.exprVecs = make([]types.Vec, s.nSlots)
	return sc
}

// liveAll returns the identity selection [0..n), growing the shared
// buffer as needed.
func (sc *vecScratch) liveAll(n int) []int32 {
	for len(sc.allIdx) < n {
		sc.allIdx = append(sc.allIdx, int32(len(sc.allIdx)))
	}
	return sc.allIdx[:n]
}

// fill materializes the visible rows of position range [lo, hi) into the
// scratch batch and runs the stage kernels: filters narrow the selection
// vector, computed projections publish new batch columns. It checks
// governance once per batch.
func (s *vecSpec) fill(lo, hi int, sc *vecScratch) error {
	if err := s.gov.Err(); err != nil {
		return err
	}
	sc.idx = s.snap.CollectVisible(lo, hi, s.ranges, sc.idx[:0])
	b := &sc.batch
	b.N = len(sc.idx)
	b.Sel, b.HasSel = nil, false
	if b.N == 0 {
		return nil
	}
	s.snap.FillVecs(sc.idx, s.ords, sc.ptrs)
	if s.met != nil {
		s.met.VecBatches.Inc()
	}
	statAdd(s.scanStats, int64(b.N))
	cur := sc.liveAll(b.N)
	filtered := false
	flip := 0
	for si := range s.stages {
		st := &s.stages[si]
		for ci := range st.filt {
			var dst []int32
			if flip%2 == 0 {
				dst = sc.selA[:0]
			} else {
				dst = sc.selB[:0]
			}
			dst = st.filt[ci].run(b, cur, dst, sc)
			if flip%2 == 0 {
				sc.selA = dst
			} else {
				sc.selB = dst
			}
			cur = dst
			flip++
			filtered = true
			if len(cur) == 0 {
				break
			}
		}
		for _, ce := range st.exprs {
			res := ce.expr.eval(b, cur, sc)
			b.Cols[ce.dst] = *res
		}
		statAdd(st.stats, int64(len(cur)))
	}
	if filtered {
		b.Sel, b.HasSel = cur, true
	}
	return nil
}

// decodeRows boxes the batch's live rows in selection order, appending
// to dst. Rows share one flat backing array per batch, mirroring the
// row path's FillRows layout.
func (s *vecSpec) decodeRows(sc *vecScratch, dst []types.Row) []types.Row {
	b := &sc.batch
	n := b.NumRows()
	if n == 0 {
		return dst
	}
	w := len(s.proj)
	flat := make(types.Row, n*w)
	for k, ci := range s.proj {
		v := &b.Cols[ci]
		if b.HasSel {
			for i, ri := range b.Sel {
				flat[i*w+k] = v.Value(int(ri))
			}
		} else {
			for i := 0; i < n; i++ {
				flat[i*w+k] = v.Value(i)
			}
		}
	}
	for i := 0; i < n; i++ {
		dst = append(dst, flat[i*w:(i+1)*w:(i+1)*w])
	}
	return dst
}

// collectRows materializes the decoded rows of row positions [lo, hi)
// batch-at-a-time — the morsel-parallel workers' entry point into the
// batch pipeline.
func (s *vecSpec) collectRows(lo, hi, batchSize int, sc *vecScratch) ([]types.Row, error) {
	var rows []types.Row
	for pos := lo; pos < hi; pos += batchSize {
		end := pos + batchSize
		if end > hi {
			end = hi
		}
		if err := s.fill(pos, end, sc); err != nil {
			return nil, err
		}
		rows = s.decodeRows(sc, rows)
	}
	return rows, nil
}

// --- filter kernels -----------------------------------------------------

// Kernel kinds. The compiler (vecbuild.go) picks the kind from the
// statically-known column/literal type pair, replicating types.Compare's
// promotion rules exactly: same-type ints/dates/bools compare as int64,
// same-type decimals compare coefficient-wise when scales match (else
// decimal.Cmp), strings compare per dictionary code with a memo, and any
// other numeric mix falls back to float64 — exactly the types.Compare
// ladder. OR trees (vcOr) evaluate each branch's conjunct chain into its
// own selection vector and merge the survivors by ordered, deduplicating
// union; arbitrary total boolean expressions (vcExpr) run the expression
// kernels and keep rows with a non-NULL TRUE result.
const (
	vcNone   uint8 = iota // NULL literal: comparison is NULL for every row
	vcI64                 // int/date/bool column vs same-kind literal
	vcF64                 // mixed numeric column vs numeric literal
	vcDec                 // decimal column vs decimal literal
	vcStr                 // string column vs string literal
	vcIn                  // col [NOT] IN (const, ...)
	vcIsNull              // col IS [NOT] NULL
	vcOr                  // OR tree: per-branch selections, ordered union
	vcExpr                // total boolean expression kernel
)

// vecCmp is one compiled filter conjunct.
type vecCmp struct {
	kind uint8
	col  int // batch column index
	// want maps the comparison sign (-1,0,+1 → index 0,1,2) to keep.
	want        [3]bool
	i64         int64
	f64         float64
	dec         decimal.Decimal
	str         string
	list        []types.Value // IN: non-NULL constant elements
	sawNullElem bool          // IN: list contained a NULL
	not         bool          // IN / IS NULL negation
	memo        int           // vcStr: dictionary-code memo table index
	branches    [][]vecCmp    // vcOr: conjunct chain per branch
	bufBase     int           // vcOr: four scratch selection buffers
	expr        vecExpr       // vcExpr: compiled boolean kernel
}

// codeMemo caches a per-dictionary-code outcome for one conjunct within
// one batch. Entries are valid only when their epoch matches cur; the
// epoch is bumped every batch because combined dictionary codes are not
// stable across batches.
type codeMemo struct {
	val   []int8
	epoch []uint32
	cur   uint32
}

// next starts a new batch epoch, growing the tables to cover size codes.
func (m *codeMemo) next(size int) {
	if size > len(m.val) {
		nv := make([]int8, size)
		copy(nv, m.val)
		m.val = nv
		ne := make([]uint32, size)
		copy(ne, m.epoch)
		m.epoch = ne
	}
	m.cur++
	if m.cur == 0 { // wrapped: stale epochs could collide, reset
		for i := range m.epoch {
			m.epoch[i] = 0
		}
		m.cur = 1
	}
}

func signIdx(c int) int8 {
	switch {
	case c < 0:
		return 0
	case c > 0:
		return 2
	}
	return 1
}

// mergeUnion appends the ordered, deduplicating union of two ascending
// selection vectors to dst.
func mergeUnion(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// run applies the conjunct to the rows listed in `in`, appending
// survivors to out. NULL comparison results drop the row, which is
// exactly the row filter's three-valued semantics: both FALSE and NULL
// conjuncts drop a row, so intersecting selection vectors conjunct by
// conjunct equals evaluating the AND tree — and unioning per-branch
// selections equals evaluating the OR tree, because a row survives an OR
// iff at least one branch is non-NULL TRUE.
func (c *vecCmp) run(b *Batch, in, out []int32, sc *vecScratch) []int32 {
	switch c.kind {
	case vcOr:
		return c.runOr(b, in, out, sc)
	case vcExpr:
		v := c.expr.eval(b, in, sc)
		hasNulls := len(v.Nulls) > 0
		for _, i := range in {
			if hasNulls && v.NullAt(int(i)) {
				continue
			}
			if v.I64[i] != 0 {
				out = append(out, i)
			}
		}
		return out
	}
	v := &b.Cols[c.col]
	hasNulls := len(v.Nulls) > 0
	switch c.kind {
	case vcNone:
		// cmp with NULL literal is NULL for every row: keep nothing.
	case vcI64:
		lit := c.i64
		for _, i := range in {
			if hasNulls && v.NullAt(int(i)) {
				continue
			}
			x := v.I64[i]
			var s int8
			switch {
			case x < lit:
				s = 0
			case x > lit:
				s = 2
			default:
				s = 1
			}
			if c.want[s] {
				out = append(out, i)
			}
		}
	case vcDec:
		lc, ls := c.dec.Coef, c.dec.Scale
		for _, i := range in {
			if hasNulls && v.NullAt(int(i)) {
				continue
			}
			var s int8
			if v.Scale[i] == ls {
				// Equal scales: decimal.Cmp aligns to raw coefficients,
				// so a plain coefficient compare is identical.
				x := v.I64[i]
				switch {
				case x < lc:
					s = 0
				case x > lc:
					s = 2
				default:
					s = 1
				}
			} else {
				s = signIdx((decimal.Decimal{Coef: v.I64[i], Scale: v.Scale[i]}).Cmp(c.dec))
			}
			if c.want[s] {
				out = append(out, i)
			}
		}
	case vcF64:
		lit := c.f64
		cmpF := func(i int32, x float64) {
			var s int8
			switch {
			case x < lit:
				s = 0
			case x > lit:
				s = 2
			default:
				s = 1
			}
			if c.want[s] {
				out = append(out, i)
			}
		}
		switch v.Typ {
		case types.TFloat:
			for _, i := range in {
				if hasNulls && v.NullAt(int(i)) {
					continue
				}
				cmpF(i, v.F64[i])
			}
		case types.TDecimal:
			for _, i := range in {
				if hasNulls && v.NullAt(int(i)) {
					continue
				}
				cmpF(i, (decimal.Decimal{Coef: v.I64[i], Scale: v.Scale[i]}).Float64())
			}
		default: // TInt, TDate
			for _, i := range in {
				if hasNulls && v.NullAt(int(i)) {
					continue
				}
				cmpF(i, float64(v.I64[i]))
			}
		}
	case vcStr:
		m := &sc.memos[c.memo]
		m.next(v.Dict.Size())
		for _, i := range in {
			if hasNulls && v.NullAt(int(i)) {
				continue
			}
			code := v.Codes[i]
			s := m.val[code]
			if m.epoch[code] != m.cur {
				s = signIdx(strings.Compare(v.Dict.Decode(code), c.str))
				m.val[code], m.epoch[code] = s, m.cur
			}
			if c.want[s] {
				out = append(out, i)
			}
		}
	case vcIn:
		for _, i := range in {
			val := v.Value(int(i))
			if val.IsNull() {
				continue // NULL IN (...) is NULL: dropped
			}
			matched := false
			for _, x := range c.list {
				if types.Equal(val, x) {
					matched = true
					break
				}
			}
			var keep bool
			switch {
			case matched:
				keep = !c.not
			case c.sawNullElem:
				keep = false // no match but a NULL element: NULL, dropped
			default:
				keep = c.not
			}
			if keep {
				out = append(out, i)
			}
		}
	case vcIsNull:
		for _, i := range in {
			if v.NullAt(int(i)) != c.not {
				out = append(out, i)
			}
		}
	}
	return out
}

// runOr evaluates each branch's conjunct chain over the full input
// selection and merges the per-branch survivors by ordered union.
// Re-evaluating a row in several branches is harmless because admitted
// kernels are total. Uses four scratch buffers: the union accumulator
// ping-pong pair, and the branch-chain ping-pong pair (nested OR trees
// allocate their own quadruple).
func (c *vecCmp) runOr(b *Batch, in, out []int32, sc *vecScratch) []int32 {
	accIdx, otherIdx := c.bufBase, c.bufBase+1
	acc := sc.selBufs[accIdx][:0]
	sc.selBufs[accIdx] = acc
	for bi := range c.branches {
		src := in
		for ki := range c.branches[bi] {
			dstIdx := c.bufBase + 2 + ki%2
			dst := c.branches[bi][ki].run(b, src, sc.selBufs[dstIdx][:0], sc)
			sc.selBufs[dstIdx] = dst
			src = dst
			if len(src) == 0 {
				break
			}
		}
		if len(src) == 0 {
			continue
		}
		merged := mergeUnion(sc.selBufs[otherIdx][:0], sc.selBufs[accIdx], src)
		sc.selBufs[otherIdx] = merged
		accIdx, otherIdx = otherIdx, accIdx
	}
	return append(out, sc.selBufs[accIdx]...)
}

// --- row adapter --------------------------------------------------------

// vecRowsIter adapts a batch pipeline fragment to the row Iterator
// contract: it fills batches lazily (so LIMIT stops reading early) and
// emits decoded rows in position order — exactly the serial scan order.
type vecRowsIter struct {
	spec      *vecSpec
	batchSize int

	sc         *vecScratch
	unpin      func()
	total, pos int
	rows       []types.Row
	idx        int
}

func (s *vecRowsIter) Open() error {
	s.unpin = s.spec.snap.Pin()
	if err := s.spec.gov.point(PointScan); err != nil {
		return err
	}
	s.total = s.spec.snap.NumRowVersions()
	s.pos, s.idx, s.rows = 0, 0, nil
	s.sc = newVecScratch(s.spec)
	if s.spec.met != nil {
		s.spec.met.VecPipelines.Inc()
	}
	return nil
}

func (s *vecRowsIter) Next() (types.Row, bool, error) {
	for s.idx >= len(s.rows) {
		if s.pos >= s.total {
			return nil, false, nil
		}
		hi := s.pos + s.batchSize
		if err := s.spec.fill(s.pos, hi, s.sc); err != nil {
			return nil, false, err
		}
		s.pos = hi
		s.rows = s.spec.decodeRows(s.sc, s.rows[:0])
		s.idx = 0
	}
	row := s.rows[s.idx]
	s.idx++
	return row, true, nil
}

func (s *vecRowsIter) Close() {
	if s.unpin != nil {
		s.unpin()
		s.unpin = nil
	}
	s.rows = nil
}
