package exec

import (
	"fmt"
	"sort"

	"vdm/internal/decimal"
	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// Iterator is the pull-based operator interface.
type Iterator interface {
	// Open prepares the iterator (building hash tables etc.).
	Open() error
	// Next returns the next row; ok=false at end of stream.
	Next() (row types.Row, ok bool, err error)
	// Close releases resources.
	Close()
}

// --- scan -------------------------------------------------------------

// scanIter streams visible rows lazily so operators above (LIMIT in
// particular) can stop early without materializing the whole table.
// When range constraints are attached (extracted from a filter directly
// above the scan), zone-mapped blocks that cannot match are skipped.
type scanIter struct {
	snap   *storage.Snapshot
	ords   []int
	ranges []storage.ColRange
	pos    int
	gov    *Governance
	stride govStride
}

func (s *scanIter) Open() error {
	s.pos = 0
	s.stride = govStride{gov: s.gov}
	return s.gov.point(PointScan)
}

func (s *scanIter) Next() (types.Row, bool, error) {
	if err := s.stride.tick(); err != nil {
		return nil, false, err
	}
	var r int
	if len(s.ranges) > 0 {
		r = s.snap.NextVisiblePruned(s.pos, s.ranges)
	} else {
		r = s.snap.NextVisible(s.pos)
	}
	if r < 0 {
		return nil, false, nil
	}
	s.pos = r + 1
	out := make(types.Row, len(s.ords))
	s.snap.ValuesInto(r, s.ords, out)
	return out, true, nil
}

func (s *scanIter) Close() {}

// --- filter -----------------------------------------------------------

type filterIter struct {
	input Iterator
	cond  EvalFn
}

func (f *filterIter) Open() error { return f.input.Open() }

func (f *filterIter) Next() (types.Row, bool, error) {
	for {
		row, ok, err := f.input.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		v, err := f.cond(row)
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.Bool() {
			return row, true, nil
		}
	}
}

func (f *filterIter) Close() { f.input.Close() }

// --- project ----------------------------------------------------------

type projectIter struct {
	input Iterator
	exprs []EvalFn
}

func (p *projectIter) Open() error { return p.input.Open() }

func (p *projectIter) Next() (types.Row, bool, error) {
	row, ok, err := p.input.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	out := make(types.Row, len(p.exprs))
	for i, fn := range p.exprs {
		v, err := fn(row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectIter) Close() { p.input.Close() }

// --- hash join --------------------------------------------------------

// hashJoinIter implements inner and left-outer equi-joins with optional
// residual predicates, and degrades to a nested loop when no equi-keys
// exist.
type hashJoinIter struct {
	left, right Iterator
	leftOuter   bool
	leftKeys    []EvalFn // over left rows
	rightKeys   []EvalFn // over right rows
	residual    EvalFn   // over combined rows, may be nil
	rightWidth  int
	// workers > 1 enables the partitioned parallel hash build.
	workers int
	met     *Metrics
	gov     *Governance
	acct    memAcct

	table     map[string][]types.Row
	part      *partTable  // partitioned build (parallel mode)
	rightRows []types.Row // nested-loop fallback
	keyBuf    []byte
	// probe state
	curLeft  types.Row
	matches  []types.Row
	matchPos int
	matched  bool
}

func (j *hashJoinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.acct = memAcct{gov: j.gov}
	if err := j.gov.point(PointHashBuild); err != nil {
		return err
	}
	if len(j.rightKeys) > 0 && j.workers > 1 {
		// Parallel mode: materialize the build side, then partition the
		// hash build across workers.
		rows, err := drainRows(j.right, j.gov, &j.acct)
		if err != nil {
			return err
		}
		if len(rows) >= parallelBuildMinRows {
			part, err := buildPartTable(rows, j.rightKeys, j.workers)
			if err != nil {
				return err
			}
			j.part = part
			if j.met != nil {
				j.met.PartitionedBuilds.Inc()
			}
		} else {
			table, err := buildHashTable(rows, j.rightKeys)
			if err != nil {
				return err
			}
			j.table = table
		}
		j.curLeft = nil
		return nil
	}
	if len(j.rightKeys) > 0 {
		j.table = make(map[string][]types.Row)
	}
	stride := govStride{gov: j.gov}
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := j.acct.add(rowBytes(row)); err != nil {
			return err
		}
		if err := stride.tick(); err != nil {
			return err
		}
		if j.table != nil {
			key, null, err := appendEvalKey(j.keyBuf[:0], row, j.rightKeys)
			j.keyBuf = key[:0]
			if err != nil {
				return err
			}
			if null {
				continue // NULL keys never match
			}
			j.table[string(key)] = append(j.table[string(key)], row)
		} else {
			j.rightRows = append(j.rightRows, row)
		}
	}
	j.curLeft = nil
	return nil
}

// drainRows materializes every row of an open iterator, metering the
// buffered bytes against the query budget and checking cancellation at
// batch granularity (gov and acct may be nil/inert).
func drainRows(it Iterator, gov *Governance, acct *memAcct) ([]types.Row, error) {
	stride := govStride{gov: gov}
	var rows []types.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		if acct != nil {
			if err := acct.add(rowBytes(row)); err != nil {
				return nil, err
			}
		}
		if err := stride.tick(); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}

// buildHashTable builds a serial equi-join hash table from materialized
// rows, skipping NULL keys.
func buildHashTable(rows []types.Row, keys []EvalFn) (map[string][]types.Row, error) {
	table := make(map[string][]types.Row, len(rows))
	var buf []byte
	for _, row := range rows {
		key, null, err := appendEvalKey(buf[:0], row, keys)
		buf = key[:0]
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		table[string(key)] = append(table[string(key)], row)
	}
	return table, nil
}

func (j *hashJoinIter) Next() (types.Row, bool, error) {
	for {
		if j.curLeft == nil {
			row, ok, err := j.left.Next()
			if !ok || err != nil {
				return nil, false, err
			}
			j.curLeft = row
			j.matched = false
			j.matchPos = 0
			if j.table != nil || j.part != nil {
				key, null, err := appendEvalKey(j.keyBuf[:0], row, j.leftKeys)
				j.keyBuf = key[:0]
				if err != nil {
					return nil, false, err
				}
				switch {
				case null:
					j.matches = nil
				case j.part != nil:
					j.matches = j.part.lookup(key)
				default:
					j.matches = j.table[string(key)]
				}
			} else {
				j.matches = j.rightRows
			}
		}
		for j.matchPos < len(j.matches) {
			r := j.matches[j.matchPos]
			j.matchPos++
			combined := make(types.Row, 0, len(j.curLeft)+len(r))
			combined = append(combined, j.curLeft...)
			combined = append(combined, r...)
			if j.residual != nil {
				v, err := j.residual(combined)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.Bool() {
					continue
				}
			}
			j.matched = true
			return combined, true, nil
		}
		// exhausted matches for current left row
		left := j.curLeft
		wasMatched := j.matched
		j.curLeft = nil
		if j.leftOuter && !wasMatched {
			combined := make(types.Row, len(left)+j.rightWidth)
			copy(combined, left)
			for i := len(left); i < len(combined); i++ {
				combined[i] = types.NewNull(types.TNull)
			}
			return combined, true, nil
		}
	}
}

func (j *hashJoinIter) Close() {
	j.left.Close()
	j.right.Close()
	j.acct.close()
	j.table = nil
	j.part = nil
	j.rightRows = nil
}

// --- semi / anti join ---------------------------------------------------

// semiJoinIter implements semi and anti joins (EXISTS / IN subqueries
// after unnesting). Output rows are left rows only. nullAware selects
// NOT IN's three-valued semantics: any NULL key on the build side — or
// a NULL probe key with a non-empty build side — rejects non-matching
// rows.
type semiJoinIter struct {
	left, right Iterator
	anti        bool
	nullAware   bool
	leftKeys    []EvalFn
	rightKeys   []EvalFn
	residual    EvalFn // over combined (left ++ right) rows

	table      map[string][]types.Row
	rightRows  []types.Row // nested-loop fallback (no equi keys)
	rightCount int
	sawNullKey bool
	keyBuf     []byte
	gov        *Governance
	acct       memAcct
}

func (j *semiJoinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.acct = memAcct{gov: j.gov}
	if err := j.gov.point(PointHashBuild); err != nil {
		return err
	}
	if len(j.rightKeys) > 0 {
		j.table = make(map[string][]types.Row)
	}
	stride := govStride{gov: j.gov}
	for {
		row, ok, err := j.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := j.acct.add(rowBytes(row)); err != nil {
			return err
		}
		if err := stride.tick(); err != nil {
			return err
		}
		j.rightCount++
		if j.table != nil {
			key, null, err := appendEvalKey(j.keyBuf[:0], row, j.rightKeys)
			j.keyBuf = key[:0]
			if err != nil {
				return err
			}
			if null {
				j.sawNullKey = true
				continue
			}
			j.table[string(key)] = append(j.table[string(key)], row)
		} else {
			j.rightRows = append(j.rightRows, row)
		}
	}
	return nil
}

func (j *semiJoinIter) matches(left types.Row) (bool, error) {
	var candidates []types.Row
	keyNull := false
	if j.table != nil {
		key, null, err := appendEvalKey(j.keyBuf[:0], left, j.leftKeys)
		j.keyBuf = key[:0]
		if err != nil {
			return false, err
		}
		keyNull = null
		if !null {
			candidates = j.table[string(key)]
		}
	} else {
		candidates = j.rightRows
	}
	if j.nullAware {
		// NOT IN semantics (the iterator runs in anti mode): a NULL probe
		// key or any NULL build key makes the predicate NULL, rejecting
		// the row — unless the subquery returned no rows at all.
		if j.rightCount == 0 {
			return false, nil
		}
		if keyNull || j.sawNullKey {
			return true, nil // "matches" → anti join drops the row
		}
	}
	if j.residual == nil {
		return len(candidates) > 0, nil
	}
	for _, r := range candidates {
		combined := make(types.Row, 0, len(left)+len(r))
		combined = append(combined, left...)
		combined = append(combined, r...)
		v, err := j.residual(combined)
		if err != nil {
			return false, err
		}
		if !v.IsNull() && v.Bool() {
			return true, nil
		}
	}
	return false, nil
}

func (j *semiJoinIter) Next() (types.Row, bool, error) {
	for {
		row, ok, err := j.left.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		m, err := j.matches(row)
		if err != nil {
			return nil, false, err
		}
		if m != j.anti {
			return row, true, nil
		}
	}
}

func (j *semiJoinIter) Close() {
	j.left.Close()
	j.right.Close()
	j.acct.close()
	j.table = nil
	j.rightRows = nil
}

// --- hash join, build-left variant --------------------------------------

// hashJoinBuildLeftIter materializes the (small, limit-bounded) left
// side into the hash table and streams the right side, emitting matches
// as they are found and NULL-extending unmatched left rows at the end
// for left outer joins. The output multiset is identical to
// hashJoinIter's; only the order differs.
type hashJoinBuildLeftIter struct {
	left, right Iterator
	leftOuter   bool
	leftKeys    []EvalFn
	rightKeys   []EvalFn
	residual    EvalFn
	rightWidth  int

	leftRows []types.Row
	matched  []bool
	table    map[string][]int // key -> left row indexes
	keyBuf   []byte
	gov      *Governance
	acct     memAcct

	// streaming state
	pending   []types.Row
	pendPos   int
	rightDone bool
	tailPos   int
}

func (j *hashJoinBuildLeftIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.acct = memAcct{gov: j.gov}
	if err := j.gov.point(PointHashBuild); err != nil {
		return err
	}
	j.table = make(map[string][]int)
	stride := govStride{gov: j.gov}
	for {
		row, ok, err := j.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := j.acct.add(rowBytes(row)); err != nil {
			return err
		}
		if err := stride.tick(); err != nil {
			return err
		}
		idx := len(j.leftRows)
		j.leftRows = append(j.leftRows, row)
		key, null, err := appendEvalKey(j.keyBuf[:0], row, j.leftKeys)
		j.keyBuf = key[:0]
		if err != nil {
			return err
		}
		if !null {
			j.table[string(key)] = append(j.table[string(key)], idx)
		}
	}
	j.matched = make([]bool, len(j.leftRows))
	return nil
}

func (j *hashJoinBuildLeftIter) Next() (types.Row, bool, error) {
	for {
		if j.pendPos < len(j.pending) {
			row := j.pending[j.pendPos]
			j.pendPos++
			return row, true, nil
		}
		if !j.rightDone {
			rrow, ok, err := j.right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.rightDone = true
				continue
			}
			key, null, err := appendEvalKey(j.keyBuf[:0], rrow, j.rightKeys)
			j.keyBuf = key[:0]
			if err != nil {
				return nil, false, err
			}
			if null {
				continue
			}
			j.pending = j.pending[:0]
			j.pendPos = 0
			for _, li := range j.table[string(key)] {
				combined := make(types.Row, 0, len(j.leftRows[li])+len(rrow))
				combined = append(combined, j.leftRows[li]...)
				combined = append(combined, rrow...)
				if j.residual != nil {
					v, err := j.residual(combined)
					if err != nil {
						return nil, false, err
					}
					if v.IsNull() || !v.Bool() {
						continue
					}
				}
				j.matched[li] = true
				j.pending = append(j.pending, combined)
			}
			continue
		}
		// Right exhausted: NULL-extend unmatched left rows.
		if !j.leftOuter {
			return nil, false, nil
		}
		for j.tailPos < len(j.leftRows) {
			li := j.tailPos
			j.tailPos++
			if j.matched[li] {
				continue
			}
			combined := make(types.Row, len(j.leftRows[li])+j.rightWidth)
			copy(combined, j.leftRows[li])
			for i := len(j.leftRows[li]); i < len(combined); i++ {
				combined[i] = types.NewNull(types.TNull)
			}
			return combined, true, nil
		}
		return nil, false, nil
	}
}

func (j *hashJoinBuildLeftIter) Close() {
	j.left.Close()
	j.right.Close()
	j.acct.close()
	j.table = nil
	j.leftRows = nil
}

// --- cross join -------------------------------------------------------

type crossJoinIter struct {
	left, right Iterator
	rightRows   []types.Row
	curLeft     types.Row
	pos         int
	gov         *Governance
	acct        memAcct
	stride      govStride
}

func (c *crossJoinIter) Open() error {
	if err := c.left.Open(); err != nil {
		return err
	}
	if err := c.right.Open(); err != nil {
		return err
	}
	c.acct = memAcct{gov: c.gov}
	c.stride = govStride{gov: c.gov}
	if err := c.gov.point(PointHashBuild); err != nil {
		return err
	}
	rows, err := drainRows(c.right, c.gov, &c.acct)
	if err != nil {
		return err
	}
	c.rightRows = rows
	return nil
}

func (c *crossJoinIter) Next() (types.Row, bool, error) {
	// The output is |left|×|right| rows: check cancellation on the
	// emit path too, not just while draining the build side.
	if err := c.stride.tick(); err != nil {
		return nil, false, err
	}
	for {
		if c.curLeft == nil {
			row, ok, err := c.left.Next()
			if !ok || err != nil {
				return nil, false, err
			}
			c.curLeft = row
			c.pos = 0
		}
		if c.pos < len(c.rightRows) {
			r := c.rightRows[c.pos]
			c.pos++
			combined := make(types.Row, 0, len(c.curLeft)+len(r))
			combined = append(combined, c.curLeft...)
			combined = append(combined, r...)
			return combined, true, nil
		}
		c.curLeft = nil
	}
}

func (c *crossJoinIter) Close() {
	c.left.Close()
	c.right.Close()
	c.acct.close()
	c.rightRows = nil
}

// --- group by ---------------------------------------------------------

type aggState struct {
	count    int64
	sumInt   int64
	sumFloat float64
	sumDec   decimal.Decimal
	sumTyp   types.Type
	sawVal   bool
	min, max types.Value
	distinct map[string]bool
}

type groupSpec struct {
	op       plan.AggOp
	arg      EvalFn // nil for COUNT(*)
	star     bool
	distinct bool
	typ      types.Type
}

type groupByIter struct {
	input     Iterator
	groupIdx  []int // positions of group cols in input rows
	aggs      []groupSpec
	scalarAgg bool // no group cols: always emit one row
	gov       *Governance
	acct      memAcct

	groups []types.Row
	pos    int
}

// aggStateBytes is the charged footprint of one aggregate state within
// a group entry (struct plus map header slack; DISTINCT values are
// metered separately as they are inserted).
const aggStateBytes = 96

func (g *groupByIter) Open() error {
	if err := g.input.Open(); err != nil {
		return err
	}
	g.acct = memAcct{gov: g.gov}
	if err := g.gov.point(PointGroupMerge); err != nil {
		return err
	}
	type entry struct {
		groupVals types.Row
		states    []aggState
	}
	table := make(map[string]*entry)
	var order []*entry
	var keyBuf []byte
	stride := govStride{gov: g.gov}
	for {
		row, ok, err := g.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := stride.tick(); err != nil {
			return err
		}
		keyBuf = keyBuf[:0]
		for _, idx := range g.groupIdx {
			keyBuf = row[idx].AppendKey(keyBuf)
		}
		e, ok := table[string(keyBuf)]
		if !ok {
			groupVals := make(types.Row, len(g.groupIdx))
			for i, idx := range g.groupIdx {
				groupVals[i] = row[idx]
			}
			e = &entry{groupVals: groupVals, states: make([]aggState, len(g.aggs))}
			table[string(keyBuf)] = e
			order = append(order, e)
			if err := g.acct.add(int64(len(keyBuf)) + rowBytes(groupVals) + int64(len(g.aggs))*aggStateBytes); err != nil {
				return err
			}
		}
		for i := range g.aggs {
			if err := accumulate(&e.states[i], &g.aggs[i], row, &g.acct); err != nil {
				return err
			}
		}
	}
	if len(order) == 0 && g.scalarAgg {
		order = append(order, &entry{states: make([]aggState, len(g.aggs))})
	}
	for _, e := range order {
		out := make(types.Row, 0, len(e.groupVals)+len(g.aggs))
		out = append(out, e.groupVals...)
		for i := range g.aggs {
			v, err := finalize(&e.states[i], &g.aggs[i])
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		if err := g.acct.add(rowBytes(out)); err != nil {
			return err
		}
		g.groups = append(g.groups, out)
	}
	g.pos = 0
	return nil
}

// accumulate folds one row into an aggregation state; acct (never nil)
// meters DISTINCT seen-set growth against the query budget.
func accumulate(st *aggState, spec *groupSpec, row types.Row, acct *memAcct) error {
	if spec.star {
		st.count++
		return nil
	}
	v, err := spec.arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if spec.distinct {
		if st.distinct == nil {
			st.distinct = make(map[string]bool)
		}
		key := string(v.AppendKey(nil))
		if st.distinct[key] {
			return nil
		}
		st.distinct[key] = true
		if err := acct.add(int64(len(key)) + 48); err != nil {
			return err
		}
	}
	st.count++
	return accumulateValue(st, spec, v)
}

// accumulateValue folds one non-NULL, distinct-deduplicated value into
// the aggregation state (the count has already been bumped).
func accumulateValue(st *aggState, spec *groupSpec, v types.Value) error {
	switch spec.op {
	case plan.AggSum, plan.AggAvg:
		switch v.Typ {
		case types.TInt:
			if st.sawVal && st.sumTyp == types.TFloat {
				st.sumFloat += float64(v.Int())
			} else {
				st.sumInt += v.Int()
				st.sumTyp = types.TInt
			}
		case types.TFloat:
			if st.sumTyp == types.TInt {
				st.sumFloat = float64(st.sumInt)
			}
			st.sumFloat += v.Float()
			st.sumTyp = types.TFloat
		case types.TDecimal:
			st.sumDec = st.sumDec.Add(v.Decimal())
			st.sumTyp = types.TDecimal
		default:
			return fmt.Errorf("exec: SUM/AVG on %s", v.Typ)
		}
		st.sawVal = true
	case plan.AggMin:
		if !st.sawVal {
			st.min = v
			st.sawVal = true
		} else if c, err := types.Compare(v, st.min); err == nil && c < 0 {
			st.min = v
		}
	case plan.AggMax:
		if !st.sawVal {
			st.max = v
			st.sawVal = true
		} else if c, err := types.Compare(v, st.max); err == nil && c > 0 {
			st.max = v
		}
	case plan.AggCount:
		// count accumulated above
	}
	return nil
}

func finalize(st *aggState, spec *groupSpec) (types.Value, error) {
	switch spec.op {
	case plan.AggCount:
		return types.NewInt(st.count), nil
	case plan.AggSum:
		if !st.sawVal {
			return types.NewNull(spec.typ), nil
		}
		switch st.sumTyp {
		case types.TInt:
			return types.NewInt(st.sumInt), nil
		case types.TFloat:
			return types.NewFloat(st.sumFloat), nil
		case types.TDecimal:
			return types.NewDecimal(st.sumDec), nil
		}
	case plan.AggAvg:
		if !st.sawVal || st.count == 0 {
			return types.NewNull(spec.typ), nil
		}
		switch st.sumTyp {
		case types.TInt:
			return types.NewFloat(float64(st.sumInt) / float64(st.count)), nil
		case types.TFloat:
			return types.NewFloat(st.sumFloat / float64(st.count)), nil
		case types.TDecimal:
			scale := st.sumDec.Scale + 6
			if scale > decimal.MaxScale {
				scale = decimal.MaxScale
			}
			q, err := st.sumDec.Div(decimal.FromInt(st.count), scale)
			if err != nil {
				return types.Value{}, err
			}
			return types.NewDecimal(q), nil
		}
	case plan.AggMin:
		if !st.sawVal {
			return types.NewNull(spec.typ), nil
		}
		return st.min, nil
	case plan.AggMax:
		if !st.sawVal {
			return types.NewNull(spec.typ), nil
		}
		return st.max, nil
	}
	return types.Value{}, fmt.Errorf("exec: unknown aggregate")
}

func (g *groupByIter) Next() (types.Row, bool, error) {
	if g.pos >= len(g.groups) {
		return nil, false, nil
	}
	row := g.groups[g.pos]
	g.pos++
	return row, true, nil
}

func (g *groupByIter) Close() {
	g.input.Close()
	g.acct.close()
	g.groups = nil
}

// --- union all --------------------------------------------------------

type unionIter struct {
	children []Iterator
	cur      int
}

func (u *unionIter) Open() error {
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	u.cur = 0
	return nil
}

func (u *unionIter) Next() (types.Row, bool, error) {
	for u.cur < len(u.children) {
		row, ok, err := u.children[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.cur++
	}
	return nil, false, nil
}

func (u *unionIter) Close() {
	for _, c := range u.children {
		c.Close()
	}
}

// --- sort -------------------------------------------------------------

// sortKeySpec names one ORDER BY key: column position and direction.
type sortKeySpec struct {
	idx  int
	desc bool
}

// compareRows orders two rows under the given sort keys. NULLs sort
// first ascending (last descending), matching sortIter's historical
// behavior.
func compareRows(a, b types.Row, keys []sortKeySpec) (int, error) {
	for _, k := range keys {
		va, vb := a[k.idx], b[k.idx]
		switch {
		case va.IsNull() && vb.IsNull():
			continue
		case va.IsNull():
			if k.desc {
				return 1, nil
			}
			return -1, nil
		case vb.IsNull():
			if k.desc {
				return -1, nil
			}
			return 1, nil
		}
		c, err := types.Compare(va, vb)
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if k.desc {
			return -c, nil
		}
		return c, nil
	}
	return 0, nil
}

type sortIter struct {
	input Iterator
	keys  []sortKeySpec
	rows  []types.Row
	pos   int
	gov   *Governance
	acct  memAcct
}

func (s *sortIter) Open() error {
	if err := s.input.Open(); err != nil {
		return err
	}
	s.acct = memAcct{gov: s.gov}
	if err := s.gov.point(PointSort); err != nil {
		return err
	}
	rows, err := drainRows(s.input, s.gov, &s.acct)
	if err != nil {
		return err
	}
	s.rows = rows
	var sortErr error
	sort.SliceStable(s.rows, func(i, j int) bool {
		c, err := compareRows(s.rows[i], s.rows[j], s.keys)
		if err != nil && sortErr == nil {
			sortErr = err
		}
		return c < 0
	})
	if sortErr != nil {
		return sortErr
	}
	s.pos = 0
	return nil
}

func (s *sortIter) Next() (types.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

func (s *sortIter) Close() {
	s.input.Close()
	s.acct.close()
	s.rows = nil
}

// --- limit ------------------------------------------------------------

type limitIter struct {
	input   Iterator
	count   int64 // -1 = unlimited
	offset  int64
	skipped int64
	emitted int64
}

func (l *limitIter) Open() error {
	l.skipped, l.emitted = 0, 0
	return l.input.Open()
}

func (l *limitIter) Next() (types.Row, bool, error) {
	for l.skipped < l.offset {
		_, ok, err := l.input.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		l.skipped++
	}
	if l.count >= 0 && l.emitted >= l.count {
		return nil, false, nil
	}
	row, ok, err := l.input.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	l.emitted++
	return row, true, nil
}

func (l *limitIter) Close() { l.input.Close() }

// --- distinct ---------------------------------------------------------

type distinctIter struct {
	input  Iterator
	seen   map[string]bool
	keyBuf []byte
	gov    *Governance
	acct   memAcct
	stride govStride
}

func (d *distinctIter) Open() error {
	d.seen = make(map[string]bool)
	d.acct = memAcct{gov: d.gov}
	d.stride = govStride{gov: d.gov}
	return d.input.Open()
}

func (d *distinctIter) Next() (types.Row, bool, error) {
	for {
		row, ok, err := d.input.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		if err := d.stride.tick(); err != nil {
			return nil, false, err
		}
		d.keyBuf = types.AppendRowKey(d.keyBuf[:0], row)
		if d.seen[string(d.keyBuf)] {
			continue
		}
		d.seen[string(d.keyBuf)] = true
		if err := d.acct.add(int64(len(d.keyBuf)) + 48); err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
}

func (d *distinctIter) Close() {
	d.input.Close()
	d.acct.close()
	d.seen = nil
}

// --- values -----------------------------------------------------------

type valuesIter struct {
	rows []types.Row
	pos  int
}

func (v *valuesIter) Open() error { v.pos = 0; return nil }

func (v *valuesIter) Next() (types.Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	row := v.rows[v.pos]
	v.pos++
	return row, true, nil
}

func (v *valuesIter) Close() {}
