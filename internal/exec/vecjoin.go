package exec

import (
	"vdm/internal/types"
)

// Vectorized hash join: both inputs are batch pipelines, the build side
// is swept batch-at-a-time into a hash table keyed on typed values
// (int64 for integer-tagged keys, the raw string for dictionary keys,
// Value.AppendKey bytes otherwise), and the probe side streams batches
// through the table. Emission order, NULL-key handling, LEFT OUTER
// extension, and build-side metering replicate hashJoinIter (build
// right, probe left) and hashJoinBuildLeftIter (build left, probe
// right) exactly, so results are row- and order-identical to the row
// executor — serial and parallel.

// Join key strategies. The typed fast paths are byte-parity with
// Value.AppendKey: TInt/TDate/TBool share the integer key tag encoding
// the raw payload (so an int column joins a date column exactly as the
// row path does), and a single string key's encoding is injective in
// the string. Everything else — decimals (which normalize), float/int
// mixes (which never match, as their tags differ), multi-column keys —
// goes through the actual AppendKey bytes.
const (
	jkInt   uint8 = iota // single key, both sides integer-tagged
	jkStr                // single key, both sides strings
	jkBytes              // AppendKey-encoded key bytes
)

type vecHashJoinIter struct {
	build, probe *vecSpec
	// buildLeft: the hash side is the plan's left input (the optimizer's
	// BuildLeft choice); otherwise the conventional build-right layout.
	buildLeft bool
	leftOuter bool
	// key positions within the decoded build/probe rows.
	buildKeyPos, probeKeyPos []int
	keyKind                  uint8
	rightWidth               int // NULL-extension width for outer rows
	// proj, when non-nil, projects the logical left++right output row
	// down to the given combined positions during emission (a fused
	// parent Project of bare column refs); nil emits the full row.
	proj       []int
	arena      rowArena
	batchSize  int
	workers    int // >1 enables the parallel probe
	morselSize int
	met        *Metrics
	gov        *Governance
	acct       memAcct

	buildRows []types.Row
	intTable  map[int64][]int32
	strTable  map[string][]int32
	matched   []bool // buildLeft && leftOuter
	keyBuf    []byte

	// serial probe state
	sc        *vecScratch
	unpin     func()
	total     int
	pos       int
	probeRows []types.Row
	probeIdx  int
	pending   []types.Row
	pendPos   int
	tailPos   int

	// parallel probe state
	parallel            bool
	out                 []types.Row
	outPos              int
	parWorkers, morsels int
}

func (j *vecHashJoinIter) Open() error {
	j.acct = memAcct{gov: j.gov}
	if err := j.gov.point(PointHashBuild); err != nil {
		return err
	}
	if j.met != nil {
		j.met.VecPipelines.Inc()
	}
	if err := j.buildTable(); err != nil {
		return err
	}
	if j.buildLeft && j.leftOuter {
		j.matched = make([]bool, len(j.buildRows))
	}
	if j.workers > 1 {
		return j.probeParallel()
	}
	j.unpin = j.probe.snap.Pin()
	j.total = j.probe.snap.NumRowVersions()
	j.pos, j.probeIdx, j.probeRows = 0, 0, nil
	j.pending, j.pendPos, j.tailPos = nil, 0, 0
	j.sc = newVecScratch(j.probe)
	return nil
}

// buildTable sweeps the build pipeline's batches, materializes the rows
// in scan order, meters them against the query budget (every build row,
// NULL keys included — exactly what the row joins' drain loops meter),
// and indexes the non-NULL keys.
func (j *vecHashJoinIter) buildTable() error {
	unpin := j.build.snap.Pin()
	defer unpin()
	sc := newVecScratch(j.build)
	total := j.build.snap.NumRowVersions()
	for pos := 0; pos < total; pos += j.batchSize {
		if err := j.build.fill(pos, pos+j.batchSize, sc); err != nil {
			return err
		}
		j.buildRows = j.build.decodeRows(sc, j.buildRows)
	}
	switch j.keyKind {
	case jkInt:
		j.intTable = make(map[int64][]int32, len(j.buildRows))
	default:
		j.strTable = make(map[string][]int32, len(j.buildRows))
	}
	for idx, row := range j.buildRows {
		if err := j.acct.add(rowBytes(row)); err != nil {
			return err
		}
		switch j.keyKind {
		case jkInt:
			v := row[j.buildKeyPos[0]]
			if v.IsNull() {
				continue // NULL keys never match
			}
			k := v.Int()
			j.intTable[k] = append(j.intTable[k], int32(idx))
		case jkStr:
			v := row[j.buildKeyPos[0]]
			if v.IsNull() {
				continue
			}
			k := v.Str()
			j.strTable[k] = append(j.strTable[k], int32(idx))
		default:
			key, null := j.appendKeyAt(row, j.buildKeyPos)
			if null {
				continue
			}
			j.strTable[string(key)] = append(j.strTable[string(key)], int32(idx))
		}
	}
	return nil
}

// appendKeyAt encodes the key values at the given row positions into
// the shared key buffer; null is true when any key value is NULL (the
// row never matches, mirroring appendEvalKey).
func (j *vecHashJoinIter) appendKeyAt(row types.Row, pos []int) ([]byte, bool) {
	j.keyBuf = j.keyBuf[:0]
	for _, p := range pos {
		v := row[p]
		if v.IsNull() {
			return nil, true
		}
		j.keyBuf = v.AppendKey(j.keyBuf)
	}
	return j.keyBuf, false
}

// lookup returns the build-row indexes matching the probe row's key, in
// build insertion order (= build scan order, like the row joins).
func (j *vecHashJoinIter) lookup(row types.Row) []int32 {
	switch j.keyKind {
	case jkInt:
		v := row[j.probeKeyPos[0]]
		if v.IsNull() {
			return nil
		}
		return j.intTable[v.Int()]
	case jkStr:
		v := row[j.probeKeyPos[0]]
		if v.IsNull() {
			return nil
		}
		return j.strTable[v.Str()]
	default:
		key, null := j.appendKeyAt(row, j.probeKeyPos)
		if null {
			return nil
		}
		return j.strTable[string(key)]
	}
}

// rowArena chunk-allocates output row backing so a joined batch costs a
// handful of allocations instead of one per row. Rows handed out are
// immutable after emission, so retaining the chunk is safe.
type rowArena struct{ buf []types.Value }

// arenaChunkRows sizes arena chunks in output rows.
const arenaChunkRows = 256

func (a *rowArena) take(n int) types.Row {
	if len(a.buf) < n {
		a.buf = make([]types.Value, arenaChunkRows*n)
	}
	r := types.Row(a.buf[:n:n])
	a.buf = a.buf[n:]
	return r
}

// outRow assembles one output row from the logical left and right
// halves, applying the fused projection when present. right == nil
// NULL-extends to rightWidth (the row joins' outer-row shape).
func (j *vecHashJoinIter) outRow(left, right types.Row) types.Row {
	if j.proj == nil {
		out := j.arena.take(len(left) + j.rightWidth)
		copy(out, left)
		if right != nil {
			copy(out[len(left):], right)
		} else {
			for i := len(left); i < len(out); i++ {
				out[i] = types.NewNull(types.TNull)
			}
		}
		return out
	}
	out := j.arena.take(len(j.proj))
	for i, p := range j.proj {
		switch {
		case p < len(left):
			out[i] = left[p]
		case right != nil:
			out[i] = right[p-len(left)]
		default:
			out[i] = types.NewNull(types.TNull)
		}
	}
	return out
}

// emitProbe appends the join output for one probe row to dst, updating
// the matched bitmap in build-left mode. The emitted shapes replicate
// the row joins: build-right emits probe++build (NULL-extending
// unmatched probes under LEFT OUTER); build-left emits build++probe for
// matches only, leaving unmatched build rows for the tail sweep. Both
// orders are the plan's left++right, since the build side is whichever
// input the optimizer chose to materialize.
func (j *vecHashJoinIter) emitProbe(row types.Row, matches []int32, dst []types.Row) []types.Row {
	if j.buildLeft {
		for _, bi := range matches {
			if j.matched != nil {
				j.matched[bi] = true
			}
			dst = append(dst, j.outRow(j.buildRows[bi], row))
		}
		return dst
	}
	for _, bi := range matches {
		dst = append(dst, j.outRow(row, j.buildRows[bi]))
	}
	if len(matches) == 0 && j.leftOuter {
		dst = append(dst, j.outRow(row, nil))
	}
	return dst
}

// tailRow emits the next unmatched build row, NULL-extended (build-left
// LEFT OUTER only), advancing tailPos.
func (j *vecHashJoinIter) tailRow() (types.Row, bool) {
	for j.tailPos < len(j.buildRows) {
		bi := j.tailPos
		j.tailPos++
		if j.matched[bi] {
			continue
		}
		return j.outRow(j.buildRows[bi], nil), true
	}
	return nil, false
}

func (j *vecHashJoinIter) Next() (types.Row, bool, error) {
	if j.parallel {
		if j.outPos >= len(j.out) {
			return nil, false, nil
		}
		row := j.out[j.outPos]
		j.outPos++
		return row, true, nil
	}
	for {
		if j.pendPos < len(j.pending) {
			row := j.pending[j.pendPos]
			j.pendPos++
			return row, true, nil
		}
		if j.probeIdx < len(j.probeRows) {
			row := j.probeRows[j.probeIdx]
			j.probeIdx++
			j.pending = j.emitProbe(row, j.lookup(row), j.pending[:0])
			j.pendPos = 0
			continue
		}
		if j.pos < j.total {
			hi := j.pos + j.batchSize
			if err := j.probe.fill(j.pos, hi, j.sc); err != nil {
				return nil, false, err
			}
			j.pos = hi
			j.probeRows = j.probe.decodeRows(j.sc, j.probeRows[:0])
			j.probeIdx = 0
			continue
		}
		// Probe exhausted: NULL-extend unmatched build rows (build-left
		// LEFT OUTER), in build order.
		if j.matched != nil {
			if row, ok := j.tailRow(); ok {
				return row, true, nil
			}
		}
		return nil, false, nil
	}
}

// probeMorsel is one probe morsel's output: the joined rows plus the
// build indexes it matched (applied serially during the ordered merge so
// the matched bitmap needs no synchronization).
type probeMorsel struct {
	rows       []types.Row
	matchedIdx []int32
}

// probeParallel runs the probe side through the morsel worker pool and
// merges morsels in sequence order, which reproduces the serial probe
// order exactly. The matched bitmap and the outer tail are applied after
// the merge. Probe output is not metered, matching the row joins'
// streaming probes.
func (j *vecHashJoinIter) probeParallel() error {
	unpin := j.probe.snap.Pin()
	defer unpin()
	total := j.probe.snap.NumRowVersions()
	morsels := (total + j.morselSize - 1) / j.morselSize
	trackMatches := j.buildLeft && j.leftOuter
	work := func(seq int) (probeMorsel, error) {
		// Worker clone: the shared iterator's scratch and key buffer are
		// not used, so lookups must stay read-only — hence the local
		// keyBuf-carrying shallow copy.
		w := *j
		w.matched = nil
		w.keyBuf = nil
		w.arena = rowArena{}
		sc := newVecScratch(j.probe)
		lo := seq * j.morselSize
		hi := lo + j.morselSize
		if hi > total {
			hi = total
		}
		var pm probeMorsel
		var rows []types.Row
		for pos := lo; pos < hi; pos += j.batchSize {
			end := pos + j.batchSize
			if end > hi {
				end = hi
			}
			if err := j.probe.fill(pos, end, sc); err != nil {
				return probeMorsel{}, err
			}
			rows = j.probe.decodeRows(sc, rows[:0])
			for _, row := range rows {
				matches := w.lookup(row)
				if trackMatches {
					pm.matchedIdx = append(pm.matchedIdx, matches...)
				}
				pm.rows = w.emitProbe(row, matches, pm.rows)
			}
		}
		return pm, nil
	}
	results, err := collectMorsels(morsels, j.workers, work)
	if err != nil {
		return err
	}
	for _, pm := range results {
		j.out = append(j.out, pm.rows...)
		for _, bi := range pm.matchedIdx {
			j.matched[bi] = true
		}
	}
	if trackMatches {
		for {
			row, ok := j.tailRow()
			if !ok {
				break
			}
			j.out = append(j.out, row)
		}
	}
	j.parallel = true
	j.outPos = 0
	j.parWorkers = j.workers
	if j.parWorkers > morsels {
		j.parWorkers = morsels
	}
	j.morsels = morsels
	return nil
}

func (j *vecHashJoinIter) Close() {
	if j.unpin != nil {
		j.unpin()
		j.unpin = nil
	}
	j.acct.close()
	j.buildRows = nil
	j.intTable = nil
	j.strTable = nil
	j.out = nil
	j.pending = nil
	j.probeRows = nil
}

// buildStats mirrors the row joins: build-left counts every
// materialized build row; build-right counts only table-indexed rows
// (NULL keys excluded), like hashJoinIter.
func (j *vecHashJoinIter) buildStats() (int64, int64) {
	if j.buildLeft {
		return rowSetBytes(j.buildRows)
	}
	var n, bytes int64
	count := func(idxs []int32) {
		for _, bi := range idxs {
			n++
			bytes += rowBytes(j.buildRows[bi])
		}
	}
	if j.intTable != nil {
		for _, idxs := range j.intTable {
			count(idxs)
		}
	} else {
		for _, idxs := range j.strTable {
			count(idxs)
		}
	}
	return n, bytes
}

func (j *vecHashJoinIter) memBytes() int64 { return j.acct.bytes() }

func (j *vecHashJoinIter) extraStats(st *OpStats) {
	if j.parallel {
		st.Workers = int64(j.parWorkers)
		st.Morsels = int64(j.morsels)
	}
}
