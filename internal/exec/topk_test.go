package exec

import (
	"fmt"
	"testing"

	"vdm/internal/types"
)

// topKInput builds a row set with heavy duplication on the sort key so
// tie-breaking is actually exercised: (k, seq) with k cycling 0..9.
func topKInput(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i % 10)), types.NewInt(int64(i))}
	}
	// A few NULL keys to pin NULL ordering.
	rows = append(rows,
		types.Row{types.NewNull(types.TInt), types.NewInt(int64(n))},
		types.Row{types.NewNull(types.TInt), types.NewInt(int64(n + 1))},
	)
	return rows
}

func drainAll(t *testing.T, it Iterator) []types.Row {
	t.Helper()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	rows, err := drainRows(it, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestTopKMatchesSortLimit verifies the fused top-k heap produces
// exactly the rows the stable full sort + limit pipeline produces, for
// ascending/descending keys, ties, offsets, and out-of-range limits.
func TestTopKMatchesSortLimit(t *testing.T) {
	rows := topKInput(100)
	cases := []struct {
		desc          bool
		offset, count int64
	}{
		{false, 0, 5},
		{false, 0, 17},
		{true, 0, 5},
		{false, 3, 7},
		{true, 10, 10},
		{false, 0, 0},
		{false, 0, 1000}, // keep > input
		{true, 98, 10},   // offset near the end
		{false, 200, 5},  // offset past the end
	}
	for _, c := range cases {
		name := fmt.Sprintf("desc=%v/off=%d/cnt=%d", c.desc, c.offset, c.count)
		keys := []sortKeySpec{{idx: 0, desc: c.desc}}
		want := drainAll(t, &limitIter{
			input:  &sortIter{input: &valuesIter{rows: rows}, keys: keys},
			count:  c.count,
			offset: c.offset,
		})
		got := drainAll(t, &topKIter{
			input:  &valuesIter{rows: rows},
			keys:   keys,
			offset: c.offset,
			count:  c.count,
		})
		if len(got) != len(want) {
			t.Errorf("%s: got %d rows, want %d", name, len(got), len(want))
			continue
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j].Key() != want[i][j].Key() {
					t.Errorf("%s: row %d col %d: got %v, want %v", name, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestTopKTieBreakIsInputOrder pins that equal-key rows survive the cut
// in input order, exactly as the stable sort would keep them.
func TestTopKTieBreakIsInputOrder(t *testing.T) {
	rows := []types.Row{
		{types.NewInt(1), types.NewString("first")},
		{types.NewInt(1), types.NewString("second")},
		{types.NewInt(1), types.NewString("third")},
		{types.NewInt(0), types.NewString("smallest")},
	}
	got := drainAll(t, &topKIter{
		input: &valuesIter{rows: rows},
		keys:  []sortKeySpec{{idx: 0}},
		count: 2,
	})
	if len(got) != 2 || got[0][1].Str() != "smallest" || got[1][1].Str() != "first" {
		t.Fatalf("tie-break violated: got %v", got)
	}
}
