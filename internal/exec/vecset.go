package exec

import (
	"vdm/internal/plan"
	"vdm/internal/types"
)

// Vectorized DISTINCT: dedup over a batch pipeline or a UNION ALL of
// batch pipelines, keying on the typed AppendKey encodings built
// directly from the column batches (Vec.AppendKeyAt is byte-parity with
// boxing the value and calling Value.AppendKey, so group identity is
// exactly distinctIter's). Serial mode streams: batches fill lazily and
// rows decode one at a time only when their key is first seen, so a
// LIMIT above stops the scan early and a high-duplication input boxes
// almost nothing. Parallel mode folds each morsel's locally-first-seen
// candidates and merges them against the global seen set in morsel
// order — which is scan order, so first-seen order (and therefore the
// output) is identical to the serial row path.

// vecDistinctIter is the batch dedup operator over one or more source
// pipelines (UNION ALL branches dedup straight into one seen set, never
// materializing the union).
type vecDistinctIter struct {
	srcs       []*vecSpec
	batchSize  int
	workers    int
	morselSize int
	gov        *Governance
	met        *Metrics

	acct   memAcct
	stride govStride
	unpins []func()
	seen   map[string]bool

	// serial streaming state
	si         int
	sc         *vecScratch
	total, pos int
	live       []int32
	li         int

	// parallel materialized state
	parallel bool
	rows     []types.Row
	ri       int

	parWorkers, morsels int
}

func (d *vecDistinctIter) Open() error {
	d.acct = memAcct{gov: d.gov}
	d.stride = govStride{gov: d.gov}
	d.seen = make(map[string]bool)
	d.parallel = d.workers > 1
	d.rows, d.ri = nil, 0
	d.parWorkers, d.morsels = 0, 0
	if err := d.gov.point(PointScan); err != nil {
		return err
	}
	if d.met != nil {
		d.met.VecPipelines.Inc()
	}
	for _, s := range d.srcs {
		d.unpins = append(d.unpins, s.snap.Pin())
	}
	if d.parallel {
		return d.foldParallel()
	}
	d.si, d.pos, d.total = 0, 0, 0
	d.live, d.li = nil, 0
	if len(d.srcs) > 0 {
		d.sc = newVecScratch(d.srcs[0])
		d.total = d.srcs[0].snap.NumRowVersions()
	}
	return nil
}

func (d *vecDistinctIter) Next() (types.Row, bool, error) {
	if d.parallel {
		if d.ri >= len(d.rows) {
			return nil, false, nil
		}
		row := d.rows[d.ri]
		d.ri++
		return row, true, nil
	}
	for {
		if d.li < len(d.live) {
			s := d.srcs[d.si]
			ri := int(d.live[d.li])
			d.li++
			if err := d.stride.tick(); err != nil {
				return nil, false, err
			}
			s.appendRowKey(d.sc, ri)
			if d.seen[string(d.sc.keyBuf)] {
				continue
			}
			key := string(d.sc.keyBuf)
			d.seen[key] = true
			if err := d.acct.add(int64(len(key)) + 48); err != nil {
				return nil, false, err
			}
			return s.decodeRow(d.sc, ri), true, nil
		}
		if d.si >= len(d.srcs) {
			return nil, false, nil
		}
		if d.pos >= d.total {
			d.si++
			if d.si >= len(d.srcs) {
				return nil, false, nil
			}
			d.sc = newVecScratch(d.srcs[d.si])
			d.total = d.srcs[d.si].snap.NumRowVersions()
			d.pos = 0
			d.live, d.li = nil, 0
			continue
		}
		s := d.srcs[d.si]
		hi := d.pos + d.batchSize
		if err := s.fill(d.pos, hi, d.sc); err != nil {
			return nil, false, err
		}
		d.pos = hi
		b := &d.sc.batch
		if b.HasSel {
			d.live = b.Sel
		} else {
			d.live = d.sc.liveAll(b.N)
		}
		d.li = 0
	}
}

// distCand is one morsel-locally-new row: its dedup key and the decoded
// row, in within-morsel scan order.
type distCand struct {
	key string
	row types.Row
}

// foldParallel dedups each source's morsels in the worker pool. A
// morsel's candidate list holds only its locally-first-seen rows; the
// serial merge re-checks them against the global seen set in morsel
// order, so the surviving rows are exactly the serial first-seen set in
// the serial order.
func (d *vecDistinctIter) foldParallel() error {
	for _, s := range d.srcs {
		total := s.snap.NumRowVersions()
		morsels := (total + d.morselSize - 1) / d.morselSize
		work := func(seq int) ([]distCand, error) {
			if err := d.gov.point(PointScan); err != nil {
				return nil, err
			}
			sc := newVecScratch(s)
			local := make(map[string]bool)
			var cands []distCand
			lo := seq * d.morselSize
			hi := lo + d.morselSize
			if hi > total {
				hi = total
			}
			for pos := lo; pos < hi; pos += d.batchSize {
				end := pos + d.batchSize
				if end > hi {
					end = hi
				}
				if err := s.fill(pos, end, sc); err != nil {
					return nil, err
				}
				b := &sc.batch
				add := func(ri int) {
					s.appendRowKey(sc, ri)
					if local[string(sc.keyBuf)] {
						return
					}
					key := string(sc.keyBuf)
					local[key] = true
					cands = append(cands, distCand{key: key, row: s.decodeRow(sc, ri)})
				}
				if b.HasSel {
					for _, ri := range b.Sel {
						add(int(ri))
					}
				} else {
					for ri := 0; ri < b.N; ri++ {
						add(ri)
					}
				}
			}
			return cands, nil
		}
		results, err := collectMorsels(morsels, d.workers, work)
		if err != nil {
			return err
		}
		if d.met != nil {
			d.met.ParallelPipelines.Inc()
			d.met.MorselsScanned.Add(int64(morsels))
		}
		w := d.workers
		if w > morsels {
			w = morsels
		}
		if w > d.parWorkers {
			d.parWorkers = w
		}
		d.morsels += morsels
		for _, cands := range results {
			for _, c := range cands {
				if err := d.stride.tick(); err != nil {
					return err
				}
				if d.seen[c.key] {
					continue
				}
				d.seen[c.key] = true
				if err := d.acct.add(int64(len(c.key)) + 48); err != nil {
					return err
				}
				d.rows = append(d.rows, c.row)
			}
		}
	}
	return nil
}

func (d *vecDistinctIter) Close() {
	for _, unpin := range d.unpins {
		unpin()
	}
	d.unpins = nil
	d.acct.close()
	d.seen = nil
	d.rows = nil
	d.live = nil
}

func (d *vecDistinctIter) memBytes() int64 { return d.acct.bytes() }

func (d *vecDistinctIter) extraStats(st *OpStats) {
	if d.morsels > 0 {
		st.Workers = int64(d.parWorkers)
		st.Morsels = int64(d.morsels)
	}
}

// appendRowKey builds the composite dedup key of row ri's output
// columns into the scratch key buffer.
func (s *vecSpec) appendRowKey(sc *vecScratch, ri int) {
	sc.keyBuf = sc.keyBuf[:0]
	for _, ci := range s.proj {
		sc.keyBuf = sc.batch.Cols[ci].AppendKeyAt(sc.keyBuf, ri)
	}
}

// decodeRow boxes one live row of the scratch batch.
func (s *vecSpec) decodeRow(sc *vecScratch, ri int) types.Row {
	row := make(types.Row, len(s.proj))
	for k, ci := range s.proj {
		row[k] = sc.batch.Cols[ci].Value(ri)
	}
	return row
}

// buildVecDistinct compiles DISTINCT over a batch pipeline (or a UNION
// ALL of batch pipelines) into the batch dedup operator.
func (b *Builder) buildVecDistinct(n *plan.Distinct) (Iterator, bool, error) {
	if !n.VecOK {
		return nil, false, nil
	}
	frags, ok := b.vecSources(n.Input)
	if !ok {
		return nil, false, nil
	}
	srcs := make([]*vecSpec, len(frags))
	for i, f := range frags {
		srcs[i] = f.spec
	}
	if b.analyze {
		for _, f := range frags {
			b.attachVecStats(f, true)
		}
		b.stampVecUnion(n.Input)
		b.nodeStats(n).Mode = "vector"
	}
	return &vecDistinctIter{
		srcs:       srcs,
		batchSize:  b.vecSize,
		workers:    b.workers,
		morselSize: b.morselSize,
		gov:        b.gov,
		met:        b.met,
	}, true, nil
}
