package exec

import (
	"strings"
	"testing"

	"vdm/internal/decimal"
	"vdm/internal/plan"
	"vdm/internal/types"
)

func compile(t *testing.T, e plan.Expr, slots map[types.ColumnID]int) EvalFn {
	t.Helper()
	fn, err := Compile(e, slots)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

func eval(t *testing.T, e plan.Expr, row types.Row) types.Value {
	t.Helper()
	slots := map[types.ColumnID]int{}
	for i := range row {
		slots[types.ColumnID(i)] = i
	}
	fn := compile(t, e, slots)
	v, err := fn(row)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func col(i types.ColumnID, typ types.Type) plan.Expr { return &plan.ColRef{ID: i, Typ: typ} }

func lit(v types.Value) plan.Expr { return &plan.Const{Val: v} }

func bin(op string, l, r plan.Expr, typ types.Type) plan.Expr {
	return &plan.Bin{Op: op, L: l, R: r, Typ: typ}
}

func TestThreeValuedAndOr(t *testing.T) {
	null := lit(types.NewNull(types.TBool))
	tru := lit(types.NewBool(true))
	fls := lit(types.NewBool(false))
	cases := []struct {
		e    plan.Expr
		null bool
		want bool
	}{
		{bin("AND", tru, null, types.TBool), true, false},
		{bin("AND", fls, null, types.TBool), false, false}, // FALSE AND NULL = FALSE
		{bin("AND", null, fls, types.TBool), false, false},
		{bin("OR", tru, null, types.TBool), false, true}, // TRUE OR NULL = TRUE
		{bin("OR", null, tru, types.TBool), false, true},
		{bin("OR", fls, null, types.TBool), true, false},
	}
	for i, c := range cases {
		v := eval(t, c.e, nil)
		if v.IsNull() != c.null {
			t.Errorf("case %d: null = %v, want %v", i, v.IsNull(), c.null)
			continue
		}
		if !c.null && v.Bool() != c.want {
			t.Errorf("case %d: = %v, want %v", i, v.Bool(), c.want)
		}
	}
}

func TestComparisonNullPropagation(t *testing.T) {
	v := eval(t, bin("=", lit(types.NewInt(1)), lit(types.NewNull(types.TInt)), types.TBool), nil)
	if !v.IsNull() {
		t.Error("1 = NULL should be NULL")
	}
}

func TestInListSemantics(t *testing.T) {
	in := func(e plan.Expr, not bool, list ...plan.Expr) plan.Expr {
		return &plan.InListExpr{E: e, List: list, Not: not}
	}
	one := lit(types.NewInt(1))
	two := lit(types.NewInt(2))
	null := lit(types.NewNull(types.TInt))
	if v := eval(t, in(one, false, one, two), nil); v.IsNull() || !v.Bool() {
		t.Error("1 IN (1,2)")
	}
	if v := eval(t, in(lit(types.NewInt(3)), false, one, two), nil); v.IsNull() || v.Bool() {
		t.Error("3 IN (1,2) should be false")
	}
	// No match but NULL present → NULL.
	if v := eval(t, in(lit(types.NewInt(3)), false, one, null), nil); !v.IsNull() {
		t.Error("3 IN (1,NULL) should be NULL")
	}
	// Match wins over NULL.
	if v := eval(t, in(one, false, null, one), nil); v.IsNull() || !v.Bool() {
		t.Error("1 IN (NULL,1) should be TRUE")
	}
	// NOT IN with match → FALSE.
	if v := eval(t, in(one, true, one), nil); v.IsNull() || v.Bool() {
		t.Error("1 NOT IN (1) should be FALSE")
	}
}

func TestArithPromotions(t *testing.T) {
	d := func(s string) types.Value { return types.NewDecimal(decimal.MustParse(s)) }
	cases := []struct {
		op   string
		a, b types.Value
		want string
	}{
		{"+", types.NewInt(2), types.NewInt(3), "5"},
		{"*", types.NewInt(2), d("1.25"), "2.50"},
		{"-", d("5.00"), types.NewInt(2), "3.00"},
		{"/", d("1.00"), types.NewInt(3), "0.33333333"},
		{"+", types.NewFloat(0.5), types.NewInt(1), "1.5"},
		{"/", types.NewInt(3), types.NewInt(2), "1.5"},
	}
	for i, c := range cases {
		v, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if v.String() != c.want {
			t.Errorf("case %d: %s %s %s = %s, want %s", i, c.a, c.op, c.b, v, c.want)
		}
	}
	if _, err := Arith("/", types.NewInt(1), types.NewInt(0)); err == nil {
		t.Error("int division by zero must error")
	}
	if _, err := Arith("/", types.NewFloat(1), types.NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
}

func TestScalarFunctions(t *testing.T) {
	d := func(s string) types.Value { return types.NewDecimal(decimal.MustParse(s)) }
	fn := func(name string, typ types.Type, args ...plan.Expr) plan.Expr {
		return &plan.Func{Name: name, Args: args, Typ: typ}
	}
	cases := []struct {
		e    plan.Expr
		want string
	}{
		{fn("ROUND", types.TDecimal, lit(d("13.1945")), lit(types.NewInt(2))), "13.19"},
		{fn("ROUND", types.TFloat, lit(types.NewFloat(2.5))), "3"},
		{fn("ABS", types.TInt, lit(types.NewInt(-7))), "7"},
		{fn("ABS", types.TDecimal, lit(d("-1.5"))), "1.5"},
		{fn("FLOOR", types.TInt, lit(types.NewFloat(1.9))), "1"},
		{fn("CEIL", types.TInt, lit(types.NewFloat(1.1))), "2"},
		{fn("COALESCE", types.TInt, lit(types.NewNull(types.TInt)), lit(types.NewInt(9))), "9"},
		{fn("IFNULL", types.TInt, lit(types.NewInt(1)), lit(types.NewInt(2))), "1"},
		{fn("NULLIF", types.TInt, lit(types.NewInt(1)), lit(types.NewInt(1))), "NULL"},
		{fn("UPPER", types.TString, lit(types.NewString("abc"))), "ABC"},
		{fn("LOWER", types.TString, lit(types.NewString("ABC"))), "abc"},
		{fn("LENGTH", types.TInt, lit(types.NewString("hello"))), "5"},
		{fn("SUBSTR", types.TString, lit(types.NewString("hello")), lit(types.NewInt(2)), lit(types.NewInt(3))), "ell"},
		{fn("SUBSTR", types.TString, lit(types.NewString("hello")), lit(types.NewInt(4))), "lo"},
		{fn("SUBSTR", types.TString, lit(types.NewString("hi")), lit(types.NewInt(9))), ""},
		{fn("CONCAT", types.TString, lit(types.NewString("a")), lit(types.NewInt(1))), "a1"},
		{fn("MOD", types.TInt, lit(types.NewInt(7)), lit(types.NewInt(3))), "1"},
		{fn("TO_DECIMAL", types.TDecimal, lit(types.NewInt(5)), lit(types.NewInt(2))), "5.00"},
	}
	for i, c := range cases {
		v := eval(t, c.e, nil)
		if v.String() != c.want {
			t.Errorf("case %d: = %s, want %s", i, v, c.want)
		}
	}
}

func TestCaseExpr(t *testing.T) {
	e := &plan.Case{
		Whens: []plan.CaseArm{
			{Cond: bin("=", col(0, types.TInt), lit(types.NewInt(1)), types.TBool), Then: lit(types.NewString("one"))},
			{Cond: bin("=", col(0, types.TInt), lit(types.NewInt(2)), types.TBool), Then: lit(types.NewString("two"))},
		},
		Else: lit(types.NewString("many")),
		Typ:  types.TString,
	}
	if got := eval(t, e, types.Row{types.NewInt(2)}); got.Str() != "two" {
		t.Errorf("case = %s", got)
	}
	if got := eval(t, e, types.Row{types.NewInt(9)}); got.Str() != "many" {
		t.Errorf("else = %s", got)
	}
	e.Else = nil
	if got := eval(t, e, types.Row{types.NewInt(9)}); !got.IsNull() {
		t.Errorf("missing else should be NULL, got %s", got)
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	_, err := Compile(col(42, types.TInt), map[types.ColumnID]int{})
	if err == nil || !strings.Contains(err.Error(), "#42") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcatOperator(t *testing.T) {
	e := bin("||", lit(types.NewString("a")), lit(types.NewInt(5)), types.TString)
	if got := eval(t, e, nil); got.Str() != "a5" {
		t.Errorf("|| = %s", got)
	}
	e = bin("||", lit(types.NewString("a")), lit(types.NewNull(types.TString)), types.TString)
	if got := eval(t, e, nil); !got.IsNull() {
		t.Error("|| with NULL should be NULL")
	}
}

func TestUnaryOps(t *testing.T) {
	neg := &plan.Un{Op: "-", E: lit(types.NewDecimal(decimal.MustParse("1.5"))), Typ: types.TDecimal}
	if got := eval(t, neg, nil); got.Decimal().String() != "-1.5" {
		t.Errorf("neg = %s", got)
	}
	not := &plan.Un{Op: "NOT", E: lit(types.NewBool(false)), Typ: types.TBool}
	if got := eval(t, not, nil); !got.Bool() {
		t.Error("NOT false")
	}
	notNull := &plan.Un{Op: "NOT", E: lit(types.NewNull(types.TBool)), Typ: types.TBool}
	if got := eval(t, notNull, nil); !got.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
}
