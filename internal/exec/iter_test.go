package exec

import (
	"fmt"
	"testing"

	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// buildEnv creates a two-table storage layer and a plan context for
// executor-level tests.
func buildEnv(t *testing.T) (*storage.DB, *plan.Context, *plan.Scan, *plan.Scan) {
	t.Helper()
	db := storage.NewDB()
	ctx := plan.NewContext()

	lt, err := db.CreateTable("l", types.Schema{
		{Name: "id", Type: types.TInt, NotNull: true},
		{Name: "ref", Type: types.TInt},
		{Name: "v", Type: types.TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := db.CreateTable("r", types.Schema{
		{Name: "id", Type: types.TInt, NotNull: true},
		{Name: "name", Type: types.TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = lt
	_ = rt
	lRows := []types.Row{
		{types.NewInt(1), types.NewInt(10), types.NewString("a")},
		{types.NewInt(2), types.NewInt(20), types.NewString("b")},
		{types.NewInt(3), types.NewNull(types.TInt), types.NewString("c")},
		{types.NewInt(4), types.NewInt(99), types.NewString("d")}, // dangling ref
	}
	rRows := []types.Row{
		{types.NewInt(10), types.NewString("ten")},
		{types.NewInt(20), types.NewString("twenty")},
		{types.NewInt(30), types.NewString("thirty")},
	}
	if err := db.InsertRows("l", lRows); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("r", rRows); err != nil {
		t.Fatal(err)
	}

	mkScan := func(name string, nCols int) *plan.Scan {
		tbl, _ := db.Table(name)
		s := &plan.Scan{Info: &plan.TableInfo{Name: name, Schema: tbl.Schema()}, Instance: ctx.NewInstance()}
		for ord := 0; ord < nCols; ord++ {
			s.Cols = append(s.Cols, ctx.NewColumn(fmt.Sprintf("%s%d", name, ord), tbl.Schema()[ord].Type))
			s.Ords = append(s.Ords, ord)
		}
		return s
	}
	return db, ctx, mkScan("l", 3), mkScan("r", 2)
}

func runAll(t *testing.T, b *Builder, n plan.Node) []types.Row {
	t.Helper()
	rows, err := b.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestHashJoinInnerAndLeftOuter(t *testing.T) {
	db, ctx, ls, rs := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())

	cond := &plan.Bin{Op: "=",
		L:   &plan.ColRef{ID: ls.Cols[1], Typ: types.TInt},
		R:   &plan.ColRef{ID: rs.Cols[0], Typ: types.TInt},
		Typ: types.TBool}

	inner := &plan.Join{Kind: plan.InnerJoin, Left: ls, Right: rs, Cond: cond}
	rows := runAll(t, b, inner)
	if len(rows) != 2 {
		t.Fatalf("inner join rows = %d", len(rows))
	}

	outer := &plan.Join{Kind: plan.LeftOuterJoin, Left: ls, Right: rs, Cond: cond}
	rows = runAll(t, b, outer)
	if len(rows) != 4 {
		t.Fatalf("left outer rows = %d", len(rows))
	}
	nullExtended := 0
	for _, r := range rows {
		if r[3].IsNull() && r[4].IsNull() {
			nullExtended++
		}
	}
	if nullExtended != 2 { // NULL ref and dangling ref
		t.Fatalf("null-extended rows = %d", nullExtended)
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	db, ctx, ls, rs := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	eq := &plan.Bin{Op: "=",
		L:   &plan.ColRef{ID: ls.Cols[1], Typ: types.TInt},
		R:   &plan.ColRef{ID: rs.Cols[0], Typ: types.TInt},
		Typ: types.TBool}
	residual := &plan.Bin{Op: "<>",
		L:   &plan.ColRef{ID: rs.Cols[1], Typ: types.TString},
		R:   &plan.Const{Val: types.NewString("ten")},
		Typ: types.TBool}
	cond := &plan.Bin{Op: "AND", L: eq, R: residual, Typ: types.TBool}
	outer := &plan.Join{Kind: plan.LeftOuterJoin, Left: ls, Right: rs, Cond: cond}
	rows := runAll(t, b, outer)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// id=1 matched r.id=10 but residual fails → NULL extension.
	for _, r := range rows {
		if r[0].Int() == 1 && !r[3].IsNull() {
			t.Fatalf("residual not applied: %v", r)
		}
	}
}

func TestNestedLoopFallback(t *testing.T) {
	db, ctx, ls, rs := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	// Non-equi condition: l.ref < r.id
	cond := &plan.Bin{Op: "<",
		L:   &plan.ColRef{ID: ls.Cols[1], Typ: types.TInt},
		R:   &plan.ColRef{ID: rs.Cols[0], Typ: types.TInt},
		Typ: types.TBool}
	inner := &plan.Join{Kind: plan.InnerJoin, Left: ls, Right: rs, Cond: cond}
	rows := runAll(t, b, inner)
	// ref=10 < {20,30} → 2; ref=20 < {30} → 1; NULL → 0; 99 → 0.
	if len(rows) != 3 {
		t.Fatalf("nested loop rows = %d", len(rows))
	}
}

// TestBuildLeftJoinEquivalence: the build-left hash join variant must
// produce the same multiset as the standard variant, including residual
// predicates and NULL extension.
func TestBuildLeftJoinEquivalence(t *testing.T) {
	db, ctx, ls, rs := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	eq := &plan.Bin{Op: "=",
		L:   &plan.ColRef{ID: ls.Cols[1], Typ: types.TInt},
		R:   &plan.ColRef{ID: rs.Cols[0], Typ: types.TInt},
		Typ: types.TBool}
	residual := &plan.Bin{Op: "<>",
		L:   &plan.ColRef{ID: rs.Cols[1], Typ: types.TString},
		R:   &plan.Const{Val: types.NewString("twenty")},
		Typ: types.TBool}
	cond := &plan.Bin{Op: "AND", L: eq, R: residual, Typ: types.TBool}

	// Wrap the left side in a generous limit so the build-left variant is
	// selected (bounded side heuristic).
	limited := &plan.Limit{Input: ls, Count: 100}
	outer := &plan.Join{Kind: plan.LeftOuterJoin, Left: limited, Right: rs, Cond: cond}
	it, err := b.Build(outer)
	if err != nil {
		t.Fatal(err)
	}
	if _, isBL := it.(*hashJoinBuildLeftIter); !isBL {
		t.Fatalf("expected build-left variant, got %T", it)
	}
	gotRows := runAll(t, b, outer)

	// Reference: the standard variant without the limit trigger.
	ref := &plan.Join{Kind: plan.LeftOuterJoin, Left: ls, Right: rs, Cond: cond}
	wantRows := runAll(t, b, ref)
	key := func(rows []types.Row) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			s := ""
			for _, v := range r {
				s += v.Key() + "|"
			}
			m[s]++
		}
		return m
	}
	got, want := key(gotRows), key(wantRows)
	if len(got) != len(want) {
		t.Fatalf("row multisets differ: %d vs %d distinct", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %q: got %d, want %d", k, got[k], n)
		}
	}
	// Inner-mode build-left: unmatched tail suppressed.
	innerJ := &plan.Join{Kind: plan.InnerJoin, Left: &plan.Limit{Input: ls, Count: 100}, Right: rs, Cond: eq}
	rows := runAll(t, b, innerJ)
	if len(rows) != 2 {
		t.Fatalf("inner build-left rows = %d", len(rows))
	}
}

func TestCrossJoin(t *testing.T) {
	db, ctx, ls, rs := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	cross := &plan.Join{Kind: plan.CrossJoin, Left: ls, Right: rs}
	rows := runAll(t, b, cross)
	if len(rows) != 12 {
		t.Fatalf("cross join rows = %d", len(rows))
	}
}

func TestGroupByDistinctAggregates(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	// Add duplicate refs by unioning the scan with itself.
	u := &plan.UnionAll{Children: []plan.Node{ls, cloneScan(ctx, ls)}}
	for range ls.Cols {
		u.Cols = append(u.Cols, ctx.NewColumn("u", types.TInt))
	}
	gb := &plan.GroupBy{
		Input: u,
		Aggs: []plan.AggCol{
			{ID: ctx.NewColumn("c", types.TInt), Op: plan.AggCount, Star: true},
			{ID: ctx.NewColumn("cd", types.TInt), Op: plan.AggCount, Distinct: true,
				Arg: &plan.ColRef{ID: u.Cols[1], Typ: types.TInt}},
			{ID: ctx.NewColumn("mx", types.TInt), Op: plan.AggMax,
				Arg: &plan.ColRef{ID: u.Cols[0], Typ: types.TInt}},
			{ID: ctx.NewColumn("mn", types.TInt), Op: plan.AggMin,
				Arg: &plan.ColRef{ID: u.Cols[0], Typ: types.TInt}},
			{ID: ctx.NewColumn("av", types.TFloat), Op: plan.AggAvg,
				Arg: &plan.ColRef{ID: u.Cols[0], Typ: types.TInt}},
		},
	}
	rows := runAll(t, b, gb)
	if len(rows) != 1 {
		t.Fatalf("scalar agg rows = %d", len(rows))
	}
	r := rows[0]
	if r[0].Int() != 8 {
		t.Errorf("count(*) = %v", r[0])
	}
	if r[1].Int() != 3 { // distinct refs: 10, 20, 99 (NULL excluded)
		t.Errorf("count(distinct ref) = %v", r[1])
	}
	if r[2].Int() != 4 || r[3].Int() != 1 {
		t.Errorf("min/max = %v/%v", r[3], r[2])
	}
	if r[4].Float() != 2.5 {
		t.Errorf("avg = %v", r[4])
	}
}

func cloneScan(ctx *plan.Context, s *plan.Scan) *plan.Scan {
	out := &plan.Scan{Info: s.Info, Instance: ctx.NewInstance()}
	for i, ord := range s.Ords {
		out.Cols = append(out.Cols, ctx.NewColumn(ctx.Name(s.Cols[i]), ctx.Type(s.Cols[i])))
		out.Ords = append(out.Ords, ord)
	}
	return out
}

func TestSortNullsFirstAndDesc(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	sorted := &plan.Sort{Input: ls, Keys: []plan.SortKey{{Col: ls.Cols[1]}}}
	rows := runAll(t, b, sorted)
	if !rows[0][1].IsNull() {
		t.Fatalf("NULL should sort first asc: %v", rows)
	}
	sortedDesc := &plan.Sort{Input: ls, Keys: []plan.SortKey{{Col: ls.Cols[1], Desc: true}}}
	rows = runAll(t, b, sortedDesc)
	if !rows[len(rows)-1][1].IsNull() {
		t.Fatalf("NULL should sort last desc: %v", rows)
	}
	if rows[0][1].Int() != 99 {
		t.Fatalf("desc first = %v", rows[0][1])
	}
}

func TestLimitOffset(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	lim := &plan.Limit{Input: ls, Count: 2, Offset: 1}
	rows := runAll(t, b, lim)
	if len(rows) != 2 || rows[0][0].Int() != 2 {
		t.Fatalf("limit/offset rows = %v", rows)
	}
	unlimited := &plan.Limit{Input: ls, Count: -1, Offset: 3}
	rows = runAll(t, b, unlimited)
	if len(rows) != 1 {
		t.Fatalf("offset-only rows = %d", len(rows))
	}
}

func TestDistinctIter(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	// Project to v-col only isn't available; distinct over full rows of
	// a union of the scan with itself halves the rows.
	u := &plan.UnionAll{Children: []plan.Node{ls, cloneScan(ctx, ls)}}
	for range ls.Cols {
		u.Cols = append(u.Cols, ctx.NewColumn("u", types.TInt))
	}
	d := &plan.Distinct{Input: u}
	rows := runAll(t, b, d)
	if len(rows) != 4 {
		t.Fatalf("distinct rows = %d", len(rows))
	}
}

func TestEmptyScanZeroColumns(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)
	b := NewBuilder(ctx, db, db.CurrentTS())
	// A scan with zero columns still produces one (empty) row per
	// visible table row — the shape count(*) plans rely on.
	ls.Cols, ls.Ords = nil, nil
	gb := &plan.GroupBy{Input: ls, Aggs: []plan.AggCol{
		{ID: ctx.NewColumn("c", types.TInt), Op: plan.AggCount, Star: true}}}
	rows := runAll(t, b, gb)
	if rows[0][0].Int() != 4 {
		t.Fatalf("count over zero-column scan = %v", rows[0][0])
	}
}
