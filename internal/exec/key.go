package exec

import (
	"vdm/internal/types"
)

// Typed hash keys. All hash-based operators (joins, group-by, distinct)
// encode their key values into a reusable byte buffer with
// types.Value.AppendKey instead of building strings through fmt: the
// only allocation left on the hot path is the map-key string created
// when a key is first inserted (lookups via m[string(buf)] compile to
// an allocation-free map access).

// appendEvalKey evaluates the key expressions against row and appends
// their composite encoding to dst. null reports that at least one key
// value was NULL (equi-join keys never match then).
func appendEvalKey(dst []byte, row types.Row, keys []EvalFn) (out []byte, null bool, err error) {
	for _, fn := range keys {
		v, err := fn(row)
		if err != nil {
			return dst, false, err
		}
		if v.IsNull() {
			return dst, true, nil
		}
		dst = v.AppendKey(dst)
	}
	return dst, false, nil
}

// hash64 is FNV-1a over the encoded key bytes, used to partition hash
// tables across parallel build workers.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
