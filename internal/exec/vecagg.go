package exec

import (
	"vdm/internal/decimal"
	"vdm/internal/plan"
	"vdm/internal/types"
)

// Vectorized aggregation: group-by and scalar aggregates folded directly
// from column batches. Grouping happens on dictionary codes where the
// single group column is a string (one decode per distinct code per
// batch, memoized), and the typed accumulators fold int/float/decimal
// vectors without boxing. Group values are decoded only when a group is
// first seen — never per input row. The fold produces the same
// []*pgEntry partials the morsel-parallel row path uses, so the merge,
// finalize, and governance-metering machinery is shared verbatim and the
// output is bit-identical to the row operators (first-seen group order,
// NULL handling, sum type promotion, and all).

// vecAggCol is one aggregate compiled against batch columns. gspec
// carries the op/star/typ triple in the shape accumulateValue and
// finalize expect, so the vector fold reuses the row path's state
// machine exactly.
type vecAggCol struct {
	op    plan.AggOp
	star  bool
	col   int // batch column of the argument; unused when star
	gspec groupSpec
}

// vecAggSpec describes a full aggregation over a batch pipeline.
type vecAggSpec struct {
	spec      *vecSpec
	groupCols []int // batch columns of the group-by keys
	aggs      []vecAggCol
	scalarAgg bool // no group columns: always emit one row
	batchSize int
}

// vecAggTable folds batches into an ordered partial-aggregate table.
// The serial operator folds the whole table into one vecAggTable; the
// morsel-parallel path folds one per morsel and merges partials in
// morsel order, exactly like the row partials.
type vecAggTable struct {
	va    *vecAggSpec
	table map[string]*pgEntry
	order []*pgEntry
	// onNew meters a freshly-created group against the query budget
	// (serial mode); nil in morsel workers, which reserve partial-table
	// footprints wholesale after the fold.
	onNew func(e *pgEntry) error

	keyBuf []byte
	valBuf []types.Value

	// Single-string-group fast path: per-batch memo from dictionary code
	// to group entry, epoch-bumped every batch because combined codes are
	// not stable across batches. strGroup caches the shape check.
	strGroup  bool
	codeEnt   []*pgEntry
	codeEpoch []uint32
	epoch     uint32
	nullEnt   *pgEntry
}

func newVecAggTable(va *vecAggSpec) *vecAggTable {
	t := &vecAggTable{va: va, table: make(map[string]*pgEntry)}
	t.strGroup = len(va.groupCols) == 1 && !va.scalarAgg
	return t
}

// foldRange folds every batch of row positions [lo, hi) into the table.
func (t *vecAggTable) foldRange(lo, hi int, sc *vecScratch) error {
	step := t.va.batchSize
	for pos := lo; pos < hi; pos += step {
		end := pos + step
		if end > hi {
			end = hi
		}
		if err := t.va.spec.fill(pos, end, sc); err != nil {
			return err
		}
		if err := t.foldBatch(&sc.batch); err != nil {
			return err
		}
	}
	return nil
}

// foldBatch folds one filled batch's live rows into the table.
func (t *vecAggTable) foldBatch(b *Batch) error {
	n := b.NumRows()
	if n == 0 {
		return nil
	}
	va := t.va
	if va.scalarAgg {
		return t.foldScalar(b, n)
	}
	if t.strGroup {
		// Computed string vectors carry materialized Strs instead of
		// dictionary codes; only dictionary-backed columns can use the
		// code memo.
		if gv := &b.Cols[va.groupCols[0]]; gv.Typ == types.TString && len(gv.Strs) == 0 {
			return t.foldStringGroup(b, gv)
		}
	}
	return t.foldGeneric(b)
}

// foldScalar folds a no-group-columns aggregation: one entry, created on
// the first live row (the zero-row case is handled at finalize, exactly
// like the row operator). COUNT(*) aggregates advance by the batch's
// live-row count without touching any vector.
func (t *vecAggTable) foldScalar(b *Batch, n int) error {
	if len(t.order) == 0 {
		e := &pgEntry{states: make([]pAggState, len(t.va.aggs))}
		t.order = append(t.order, e)
		if t.onNew != nil {
			if err := t.onNew(e); err != nil {
				return err
			}
		}
	}
	e := t.order[0]
	for i := range t.va.aggs {
		a := &t.va.aggs[i]
		st := &e.states[i].aggState
		if a.star {
			st.count += int64(n)
			continue
		}
		v := &b.Cols[a.col]
		if b.HasSel {
			for _, ri := range b.Sel {
				if err := vecAccumulate(st, a, v, int(ri)); err != nil {
					return err
				}
			}
		} else {
			for ri := 0; ri < n; ri++ {
				if err := vecAccumulate(st, a, v, ri); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// foldStringGroup folds a single-string-column grouping on dictionary
// codes: each distinct code is decoded and looked up in the global table
// once per batch, then every further row with that code hits the memo.
func (t *vecAggTable) foldStringGroup(b *Batch, gv *types.Vec) error {
	size := gv.Dict.Size()
	if size > len(t.codeEnt) {
		ne := make([]*pgEntry, size)
		copy(ne, t.codeEnt)
		t.codeEnt = ne
		np := make([]uint32, size)
		copy(np, t.codeEpoch)
		t.codeEpoch = np
	}
	t.epoch++
	if t.epoch == 0 { // wrapped: stale epochs could collide, reset
		for i := range t.codeEpoch {
			t.codeEpoch[i] = 0
		}
		t.epoch = 1
	}
	hasNulls := len(gv.Nulls) > 0
	fold := func(ri int) error {
		var e *pgEntry
		if hasNulls && gv.NullAt(ri) {
			// NULL group values are stable across batches; the entry is
			// cached directly rather than through the code memo.
			if t.nullEnt == nil {
				var err error
				if t.nullEnt, err = t.entryFor(b, ri); err != nil {
					return err
				}
			}
			e = t.nullEnt
		} else {
			code := gv.Codes[ri]
			if t.codeEpoch[code] == t.epoch {
				e = t.codeEnt[code]
			} else {
				var err error
				if e, err = t.entryFor(b, ri); err != nil {
					return err
				}
				t.codeEnt[code], t.codeEpoch[code] = e, t.epoch
			}
		}
		return t.accumRow(b, e, ri)
	}
	if b.HasSel {
		for _, ri := range b.Sel {
			if err := fold(int(ri)); err != nil {
				return err
			}
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			if err := fold(ri); err != nil {
				return err
			}
		}
	}
	return nil
}

// foldGeneric folds arbitrary group columns by encoding each live row's
// group key (the same Value.AppendKey encoding the row operators use, so
// group identity is identical).
func (t *vecAggTable) foldGeneric(b *Batch) error {
	fold := func(ri int) error {
		e, err := t.entryFor(b, ri)
		if err != nil {
			return err
		}
		return t.accumRow(b, e, ri)
	}
	if b.HasSel {
		for _, ri := range b.Sel {
			if err := fold(int(ri)); err != nil {
				return err
			}
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			if err := fold(ri); err != nil {
				return err
			}
		}
	}
	return nil
}

// entryFor resolves (creating if needed) the group entry for row ri,
// boxing and key-encoding the group values. Creation order is first-seen
// order, which the batch sweep visits in serial scan order.
func (t *vecAggTable) entryFor(b *Batch, ri int) (*pgEntry, error) {
	t.keyBuf = t.keyBuf[:0]
	t.valBuf = t.valBuf[:0]
	for _, ci := range t.va.groupCols {
		v := b.Cols[ci].Value(ri)
		t.valBuf = append(t.valBuf, v)
		t.keyBuf = v.AppendKey(t.keyBuf)
	}
	e, ok := t.table[string(t.keyBuf)]
	if !ok {
		groupVals := make(types.Row, len(t.valBuf))
		copy(groupVals, t.valBuf)
		e = &pgEntry{key: string(t.keyBuf), groupVals: groupVals, states: make([]pAggState, len(t.va.aggs))}
		t.table[e.key] = e
		t.order = append(t.order, e)
		if t.onNew != nil {
			if err := t.onNew(e); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// accumRow folds row ri into the entry's aggregate states.
func (t *vecAggTable) accumRow(b *Batch, e *pgEntry, ri int) error {
	for i := range t.va.aggs {
		a := &t.va.aggs[i]
		st := &e.states[i].aggState
		if a.star {
			st.count++
			continue
		}
		if err := vecAccumulate(st, a, &b.Cols[a.col], ri); err != nil {
			return err
		}
	}
	return nil
}

// vecAccumulate folds one vector slot into an aggregate state. The
// int/float/decimal SUM/AVG paths are unboxed transcriptions of
// accumulateValue specialized by the statically-known column type; the
// equal-scale decimal add is identical to decimal.Add (alignment at
// equal scales is a raw coefficient add). Everything else boxes the slot
// and calls accumulateValue itself, so the semantics cannot drift.
func vecAccumulate(st *aggState, a *vecAggCol, v *types.Vec, ri int) error {
	if len(v.Nulls) > 0 && v.NullAt(ri) {
		return nil // NULLs don't count and don't accumulate
	}
	st.count++
	switch a.op {
	case plan.AggSum, plan.AggAvg:
		switch v.Typ {
		case types.TInt:
			// A TInt column can never promote the sum to float.
			st.sumInt += v.I64[ri]
			st.sumTyp = types.TInt
			st.sawVal = true
			return nil
		case types.TFloat:
			st.sumFloat += v.F64[ri]
			st.sumTyp = types.TFloat
			st.sawVal = true
			return nil
		case types.TDecimal:
			sc := v.Scale[ri]
			if st.sawVal && st.sumDec.Scale == sc {
				st.sumDec.Coef += v.I64[ri]
			} else {
				st.sumDec = st.sumDec.Add(decimal.Decimal{Coef: v.I64[ri], Scale: sc})
			}
			st.sumTyp = types.TDecimal
			st.sawVal = true
			return nil
		}
	}
	return accumulateValue(st, &a.gspec, v.Value(ri))
}

// vecGroupByIter is the serial batch aggregation operator: it sweeps the
// pipeline's batches through one vecAggTable during Open, then streams
// the finalized groups. Output rows, group order, and governance
// metering are identical to groupByIter.
type vecGroupByIter struct {
	va  *vecAggSpec
	gov *Governance
	met *Metrics

	acct   memAcct
	groups []types.Row
	pos    int
}

func (g *vecGroupByIter) Open() error {
	// The sweep happens entirely inside Open; pin the snapshot's
	// timestamp in the GC watermark for its duration.
	unpin := g.va.spec.snap.Pin()
	defer unpin()
	g.acct = memAcct{gov: g.gov}
	if err := g.gov.point(PointGroupMerge); err != nil {
		return err
	}
	if g.met != nil {
		g.met.VecPipelines.Inc()
	}
	naggs := int64(len(g.va.aggs))
	t := newVecAggTable(g.va)
	t.onNew = func(e *pgEntry) error {
		return g.acct.add(int64(len(e.key)) + rowBytes(e.groupVals) + naggs*aggStateBytes)
	}
	sc := newVecScratch(g.va.spec)
	if err := t.foldRange(0, g.va.spec.snap.NumRowVersions(), sc); err != nil {
		return err
	}
	order := t.order
	if len(order) == 0 && g.va.scalarAgg {
		order = append(order, &pgEntry{states: make([]pAggState, len(g.va.aggs))})
	}
	for _, e := range order {
		out := make(types.Row, 0, len(e.groupVals)+len(g.va.aggs))
		out = append(out, e.groupVals...)
		for i := range g.va.aggs {
			v, err := finalize(&e.states[i].aggState, &g.va.aggs[i].gspec)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		if err := g.acct.add(rowBytes(out)); err != nil {
			return err
		}
		g.groups = append(g.groups, out)
	}
	g.pos = 0
	return nil
}

func (g *vecGroupByIter) Next() (types.Row, bool, error) {
	if g.pos >= len(g.groups) {
		return nil, false, nil
	}
	row := g.groups[g.pos]
	g.pos++
	return row, true, nil
}

func (g *vecGroupByIter) Close() {
	g.acct.close()
	g.groups = nil
}

func (g *vecGroupByIter) buildStats() (int64, int64) { return rowSetBytes(g.groups) }
func (g *vecGroupByIter) memBytes() int64            { return g.acct.bytes() }
