package exec

import (
	"fmt"
	"sort"

	"vdm/internal/plan"
	"vdm/internal/types"
)

// Vectorized top-k: LIMIT over ORDER BY over a batch pipeline (or a
// UNION ALL of batch pipelines) runs as a bounded heap over typed sort
// keys boxed straight from column batches. Only the sort keys are boxed
// during the sweep; the emitted page is materialized afterwards by
// re-filling exactly the winning row positions and re-running only the
// compute kernels — late materialization, so a LIMIT 10 over millions
// of rows never decodes more than 10 full rows per source. The heap
// comparator breaks key ties on (source, row position), which is the
// serial row path's arrival order, so results are row- and
// order-identical to topKIter in every mode and morsel workers can feed
// candidates in any order.

// vecTopKSrc is one input pipeline of the top-k sweep with its sort-key
// batch columns resolved.
type vecTopKSrc struct {
	spec    *vecSpec
	keyCols []int
}

// vecTopKItem is one heap candidate: the boxed sort keys plus the
// source and storage position that identify (and later re-materialize)
// the row.
type vecTopKItem struct {
	keys types.Row
	src  int
	pos  int
}

// topkHeap is a bounded max-heap of candidates: the root is the worst
// row kept, evicted as soon as a better candidate arrives. Comparison
// errors are captured on first occurrence (comparing values of
// incompatible types across UNION ALL branches), exactly like topKIter's
// cmpErr closure.
type topkHeap struct {
	items   []vecTopKItem
	keep    int
	keys    []sortKeySpec
	scratch types.Row
	err     error
}

// after reports whether a sorts after b: worse key, or equal keys with
// later arrival order (src, pos).
func (h *topkHeap) after(a, b *vecTopKItem) bool {
	c, err := compareRows(a.keys, b.keys, h.keys)
	if err != nil && h.err == nil {
		h.err = err
	}
	if c != 0 {
		return c > 0
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.pos > b.pos
}

// offer boxes row ri's sort keys into the heap's reusable scratch tuple
// and pushes only when the candidate can actually enter — once the heap
// is full, rows that lose to the current root are rejected without
// cloning the tuple, so the hot sweep loop stays allocation-free.
// Reports whether the heap grew.
func (h *topkHeap) offer(b *Batch, keyCols []int, ri, src, pos int) bool {
	if h.scratch == nil {
		h.scratch = make(types.Row, len(keyCols))
	}
	for x, kc := range keyCols {
		h.scratch[x] = b.Cols[kc].Value(ri)
	}
	cand := vecTopKItem{keys: h.scratch, src: src, pos: pos}
	if len(h.items) == h.keep && !h.after(&h.items[0], &cand) {
		return false
	}
	cand.keys = append(types.Row(nil), h.scratch...)
	return h.push(cand)
}

// push offers a candidate, reporting whether the heap grew (the only
// case that allocates and therefore meters).
func (h *topkHeap) push(it vecTopKItem) bool {
	if len(h.items) < h.keep {
		h.items = append(h.items, it)
		h.up(len(h.items) - 1)
		return true
	}
	if h.after(&h.items[0], &it) {
		h.items[0] = it
		h.down(0)
	}
	return false
}

func (h *topkHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.after(&h.items[i], &h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *topkHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			return
		}
		c := l
		if r < n && h.after(&h.items[r], &h.items[l]) {
			c = r
		}
		if !h.after(&h.items[c], &h.items[i]) {
			return
		}
		h.items[i], h.items[c] = h.items[c], h.items[i]
		i = c
	}
}

// sorted returns the kept candidates in ascending output order.
func (h *topkHeap) sorted() []vecTopKItem {
	items := h.items
	sort.Slice(items, func(i, j int) bool { return h.after(&items[j], &items[i]) })
	return items
}

// vecTopKIter is the batch top-k operator. Open sweeps every source's
// batches through the bounded heap (serial, or one local heap per
// morsel merged afterwards when workers are configured), then
// materializes the emitted page.
type vecTopKIter struct {
	srcs          []vecTopKSrc
	keys          []sortKeySpec // indexes into the boxed key tuple
	offset, count int64
	batchSize     int
	workers       int
	morselSize    int
	gov           *Governance
	met           *Metrics

	acct   memAcct
	unpins []func()
	rows   []types.Row
	pos    int

	parWorkers, morsels int
}

func (t *vecTopKIter) Open() error {
	t.acct = memAcct{gov: t.gov}
	t.rows, t.pos = nil, 0
	t.parWorkers, t.morsels = 0, 0
	if err := t.gov.point(PointTopK); err != nil {
		return err
	}
	if t.met != nil {
		t.met.VecPipelines.Inc()
	}
	// Pin every source snapshot for the whole sweep + materialization.
	for _, s := range t.srcs {
		t.unpins = append(t.unpins, s.spec.snap.Pin())
	}
	keep := t.offset + t.count
	if keep <= 0 {
		return nil
	}
	h := &topkHeap{keep: int(keep), keys: t.keys}
	var err error
	if t.workers > 1 {
		err = t.sweepParallel(h)
	} else {
		err = t.sweepSerial(h)
	}
	if err != nil {
		return err
	}
	if h.err != nil {
		return h.err
	}
	return t.materialize(h)
}

// offerBatch pushes every live row of the scratch batch into the heap,
// metering heap growth by key bytes.
func (t *vecTopKIter) offerBatch(h *topkHeap, s *vecTopKSrc, si int, sc *vecScratch) error {
	b := &sc.batch
	push := func(ri int) error {
		if h.offer(b, s.keyCols, ri, si, sc.idx[ri]) {
			return t.acct.add(rowBytes(h.scratch))
		}
		return nil
	}
	if b.HasSel {
		for _, ri := range b.Sel {
			if err := push(int(ri)); err != nil {
				return err
			}
		}
	} else {
		for ri := 0; ri < b.N; ri++ {
			if err := push(ri); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *vecTopKIter) sweepSerial(h *topkHeap) error {
	for si := range t.srcs {
		s := &t.srcs[si]
		if err := t.gov.point(PointScan); err != nil {
			return err
		}
		sc := newVecScratch(s.spec)
		total := s.spec.snap.NumRowVersions()
		for pos := 0; pos < total; pos += t.batchSize {
			if err := s.spec.fill(pos, pos+t.batchSize, sc); err != nil {
				return err
			}
			if err := t.offerBatch(h, s, si, sc); err != nil {
				return err
			}
			if h.err != nil {
				return h.err
			}
		}
	}
	return nil
}

// sweepParallel runs each source's morsels through the worker pool.
// Every morsel folds its rows into a local bounded heap — the global
// top-k is a subset of the union of per-morsel top-k sets — and the
// local winners merge into the global heap in completion order, which
// is safe because the comparator's (keys, src, pos) order is total.
func (t *vecTopKIter) sweepParallel(h *topkHeap) error {
	for si := range t.srcs {
		s := &t.srcs[si]
		total := s.spec.snap.NumRowVersions()
		morsels := (total + t.morselSize - 1) / t.morselSize
		work := func(seq int) ([]vecTopKItem, error) {
			if err := t.gov.point(PointScan); err != nil {
				return nil, err
			}
			lh := &topkHeap{keep: h.keep, keys: t.keys}
			sc := newVecScratch(s.spec)
			lo := seq * t.morselSize
			hi := lo + t.morselSize
			if hi > total {
				hi = total
			}
			for pos := lo; pos < hi; pos += t.batchSize {
				end := pos + t.batchSize
				if end > hi {
					end = hi
				}
				if err := s.spec.fill(pos, end, sc); err != nil {
					return nil, err
				}
				b := &sc.batch
				push := func(ri int) {
					lh.offer(b, s.keyCols, ri, si, sc.idx[ri])
				}
				if b.HasSel {
					for _, ri := range b.Sel {
						push(int(ri))
					}
				} else {
					for ri := 0; ri < b.N; ri++ {
						push(ri)
					}
				}
				if lh.err != nil {
					return nil, lh.err
				}
			}
			return lh.items, nil
		}
		results, err := collectMorsels(morsels, t.workers, work)
		if err != nil {
			return err
		}
		if t.met != nil {
			t.met.ParallelPipelines.Inc()
			t.met.MorselsScanned.Add(int64(morsels))
		}
		w := t.workers
		if w > morsels {
			w = morsels
		}
		if w > t.parWorkers {
			t.parWorkers = w
		}
		t.morsels += morsels
		for _, items := range results {
			for _, it := range items {
				if h.push(it) {
					if err := t.acct.add(rowBytes(it.keys)); err != nil {
						return err
					}
				}
				if h.err != nil {
					return h.err
				}
			}
		}
	}
	return nil
}

// materialize re-fills exactly the emitted page's row positions per
// source and assembles the output rows in heap order.
func (t *vecTopKIter) materialize(h *topkHeap) error {
	items := h.sorted()
	if h.err != nil {
		return h.err
	}
	start := int(t.offset)
	if start > len(items) {
		start = len(items)
	}
	emit := items[start:]
	if len(emit) == 0 {
		return nil
	}
	perSrc := make([][]int, len(t.srcs))
	for _, it := range emit {
		perSrc[it.src] = append(perSrc[it.src], it.pos)
	}
	queues := make([][]types.Row, len(t.srcs))
	for si, positions := range perSrc {
		if len(positions) == 0 {
			continue
		}
		rows, err := t.srcs[si].spec.fillPositions(positions)
		if err != nil {
			return err
		}
		queues[si] = rows
	}
	next := make([]int, len(t.srcs))
	t.rows = make([]types.Row, 0, len(emit))
	for _, it := range emit {
		row := queues[it.src][next[it.src]]
		next[it.src]++
		if err := t.acct.add(rowBytes(row)); err != nil {
			return err
		}
		t.rows = append(t.rows, row)
	}
	return nil
}

// fillPositions materializes the given storage positions — visibility
// was already established during the sweep, so the batch fills directly
// from the position list (in any order) and re-runs only the compute
// kernels; filter kernels are skipped because every listed row already
// passed them and admitted kernels are total.
func (s *vecSpec) fillPositions(positions []int) ([]types.Row, error) {
	if err := s.gov.Err(); err != nil {
		return nil, err
	}
	sc := newVecScratch(s)
	sc.idx = positions
	b := &sc.batch
	b.N = len(positions)
	b.Sel, b.HasSel = nil, false
	s.snap.FillVecs(sc.idx, s.ords, sc.ptrs)
	if s.met != nil {
		s.met.VecBatches.Inc()
	}
	sel := sc.liveAll(b.N)
	for si := range s.stages {
		for _, ce := range s.stages[si].exprs {
			res := ce.expr.eval(b, sel, sc)
			b.Cols[ce.dst] = *res
		}
	}
	return s.decodeRows(sc, nil), nil
}

func (t *vecTopKIter) Next() (types.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	row := t.rows[t.pos]
	t.pos++
	return row, true, nil
}

func (t *vecTopKIter) Close() {
	for _, unpin := range t.unpins {
		unpin()
	}
	t.unpins = nil
	t.acct.close()
	t.rows = nil
}

func (t *vecTopKIter) buildStats() (int64, int64) { return rowSetBytes(t.rows) }
func (t *vecTopKIter) memBytes() int64            { return t.acct.bytes() }

func (t *vecTopKIter) extraStats(st *OpStats) {
	st.Note = fmt.Sprintf("top_k=%d", t.offset+t.count)
	if t.morsels > 0 {
		st.Workers = int64(t.parWorkers)
		st.Morsels = int64(t.morsels)
	}
}

// buildVecTopK compiles LIMIT-over-ORDER BY into the batch top-k
// operator when the sort input is a batch pipeline or a UNION ALL of
// batch pipelines.
func (b *Builder) buildVecTopK(n *plan.Limit) (Iterator, bool, error) {
	srt, ok := n.Input.(*plan.Sort)
	if !ok || !srt.VecOK || n.Count < 0 || n.Offset < 0 {
		return nil, false, nil
	}
	frags, ok := b.vecSources(srt.Input)
	if !ok {
		return nil, false, nil
	}
	keys, err := b.sortKeys(srt)
	if err != nil {
		return nil, false, nil // the row path reports the error
	}
	srcs := make([]vecTopKSrc, len(frags))
	for i, f := range frags {
		kc := make([]int, len(keys))
		for x, k := range keys {
			if k.idx >= len(f.spec.proj) {
				return nil, false, nil
			}
			kc[x] = f.spec.proj[k.idx]
		}
		srcs[i] = vecTopKSrc{spec: f.spec, keyCols: kc}
	}
	// The heap compares boxed key tuples, not full rows: remap each key
	// to its tuple position.
	hkeys := make([]sortKeySpec, len(keys))
	for i, k := range keys {
		hkeys[i] = sortKeySpec{idx: i, desc: k.desc}
	}
	if b.met != nil {
		b.met.TopKFusions.Inc()
	}
	if b.analyze {
		for _, f := range frags {
			b.attachVecStats(f, true)
		}
		b.stampVecUnion(srt.Input)
		st := b.nodeStats(srt)
		st.Mode = "vector"
		st.Note = fmt.Sprintf("fused into top_k=%d", n.Offset+n.Count)
	}
	return &vecTopKIter{
		srcs:       srcs,
		keys:       hkeys,
		offset:     n.Offset,
		count:      n.Count,
		batchSize:  b.vecSize,
		workers:    b.workers,
		morselSize: b.morselSize,
		gov:        b.gov,
		met:        b.met,
	}, true, nil
}
