package exec

import (
	"fmt"

	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// Builder compiles logical plans into iterator trees against a storage
// snapshot timestamp.
type Builder struct {
	ctx *plan.Context
	db  *storage.DB
	ts  uint64

	// analyze turns on EXPLAIN ANALYZE instrumentation: every built
	// iterator is wrapped in a statIter recording into stats. Off by
	// default so normal execution pays nothing.
	analyze bool
	stats   map[plan.Node]*OpStats

	// workers > 1 enables morsel-driven parallel execution (see
	// SetParallel); morselSize is the rows per morsel.
	workers    int
	morselSize int
	// vecSize > 0 enables the vectorized batch executor (see
	// SetVectorize); it is the rows per column batch.
	vecSize int
	// met receives executor counters when set (see SetMetrics).
	met *Metrics
	// gov carries the query's cancellation context, memory budget, and
	// test hooks (see SetGovernance); nil runs ungoverned.
	gov *Governance
}

// SetGovernance attaches a query's governance handle: subsequent Build
// calls produce iterators that check its context at batch granularity,
// meter blocking-operator memory against its budget, and fire its test
// hooks at pause points. A nil handle (the default) is free.
func (b *Builder) SetGovernance(g *Governance) { b.gov = g }

// NewBuilder returns a builder reading the database as of commit
// timestamp ts.
func NewBuilder(ctx *plan.Context, db *storage.DB, ts uint64) *Builder {
	return &Builder{ctx: ctx, db: db, ts: ts}
}

// slotsOf maps a node's output columns to row positions.
func slotsOf(n plan.Node) map[types.ColumnID]int {
	cols := n.Columns()
	m := make(map[types.ColumnID]int, len(cols))
	for i, id := range cols {
		m[id] = i
	}
	return m
}

// EnableAnalyze turns on per-operator instrumentation for subsequent
// Build calls; NodeStats exposes the recorded counters afterwards.
func (b *Builder) EnableAnalyze() {
	b.analyze = true
	if b.stats == nil {
		b.stats = make(map[plan.Node]*OpStats)
	}
}

// NodeStats returns the runtime counters recorded for n, or nil when n
// was never built or analyze mode is off.
func (b *Builder) NodeStats(n plan.Node) *OpStats { return b.stats[n] }

func (b *Builder) nodeStats(n plan.Node) *OpStats {
	st := b.stats[n]
	if st == nil {
		st = &OpStats{}
		b.stats[n] = st
	}
	return st
}

// wrapNode attaches instrumentation to a built iterator in analyze mode.
// Nodes with both a batch and a row implementation report which executor
// ran them; vectorized builds stamp "vector" first, so anything still
// unstamped here ran the row iterators.
func (b *Builder) wrapNode(n plan.Node, it Iterator) Iterator {
	if !b.analyze {
		return it
	}
	st := b.nodeStats(n)
	if st.Mode == "" {
		switch n.(type) {
		case *plan.Scan, *plan.Filter, *plan.Project, *plan.GroupBy, *plan.Join:
			st.Mode = "row"
		}
	}
	return &statIter{inner: it, stats: st}
}

// Build compiles the plan rooted at n.
func (b *Builder) Build(n plan.Node) (Iterator, error) {
	it, err := b.build(n)
	if err != nil {
		return nil, err
	}
	return b.wrapNode(n, it), nil
}

func (b *Builder) build(n plan.Node) (Iterator, error) {
	// The batch executor gets first pick — including under parallel
	// EXPLAIN ANALYZE, whose per-node stage stats are updated atomically
	// so morsel workers can share them. Declines fall back to the row
	// path and are counted per reason in exec.vec_fallbacks.
	if b.vecSize > 0 {
		it, handled, err := b.buildVec(n)
		if handled {
			return it, err
		}
		b.countVecFallback(n)
	}
	if b.workers > 1 {
		it, handled, err := b.buildParallel(n)
		if handled {
			return it, err
		}
	}
	switch n := n.(type) {
	case *plan.Scan:
		tbl, ok := b.db.Table(n.Info.Name)
		if !ok {
			return nil, fmt.Errorf("exec: table %s does not exist", n.Info.Name)
		}
		return &scanIter{snap: tbl.SnapshotAt(b.ts), ords: n.Ords, gov: b.gov}, nil

	case *plan.Filter:
		// Filter directly over a scan: extract range constraints for
		// zone-map block pruning; the filter still runs for exactness.
		if scan, ok := n.Input.(*plan.Scan); ok {
			if ranges := extractRanges(n.Cond, scan); len(ranges) > 0 {
				tbl, ok := b.db.Table(scan.Info.Name)
				if !ok {
					return nil, fmt.Errorf("exec: table %s does not exist", scan.Info.Name)
				}
				// Wrap the fused scan separately so EXPLAIN ANALYZE still
				// reports the Scan node's own row counts. The scan itself
				// runs morsel-parallel when workers are configured.
				var inner Iterator = &scanIter{snap: tbl.SnapshotAt(b.ts), ords: scan.Ords, ranges: ranges, gov: b.gov}
				if b.workers > 1 {
					inner = b.newParallelScan(&morselSpec{snap: tbl.SnapshotAt(b.ts), ords: scan.Ords, ranges: ranges})
				}
				input := b.wrapNode(scan, inner)
				cond, err := Compile(n.Cond, slotsOf(scan))
				if err != nil {
					return nil, err
				}
				return &filterIter{input: input, cond: cond}, nil
			}
		}
		input, err := b.Build(n.Input)
		if err != nil {
			return nil, err
		}
		cond, err := Compile(n.Cond, slotsOf(n.Input))
		if err != nil {
			return nil, err
		}
		return &filterIter{input: input, cond: cond}, nil

	case *plan.Project:
		input, err := b.Build(n.Input)
		if err != nil {
			return nil, err
		}
		slots := slotsOf(n.Input)
		var exprs []EvalFn
		for _, c := range n.Cols {
			fn, err := Compile(c.Expr, slots)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, fn)
		}
		return &projectIter{input: input, exprs: exprs}, nil

	case *plan.Join:
		return b.buildJoin(n)

	case *plan.GroupBy:
		input, err := b.Build(n.Input)
		if err != nil {
			return nil, err
		}
		slots := slotsOf(n.Input)
		it := &groupByIter{input: input, scalarAgg: len(n.GroupCols) == 0, gov: b.gov}
		for _, g := range n.GroupCols {
			idx, ok := slots[g]
			if !ok {
				return nil, fmt.Errorf("exec: group column #%d missing from input", g)
			}
			it.groupIdx = append(it.groupIdx, idx)
		}
		for _, a := range n.Aggs {
			spec := groupSpec{op: a.Op, star: a.Star, distinct: a.Distinct, typ: b.ctx.Type(a.ID)}
			if !a.Star {
				fn, err := Compile(a.Arg, slots)
				if err != nil {
					return nil, err
				}
				spec.arg = fn
			}
			it.aggs = append(it.aggs, spec)
		}
		return it, nil

	case *plan.UnionAll:
		var children []Iterator
		for _, c := range n.Children {
			it, err := b.Build(c)
			if err != nil {
				return nil, err
			}
			children = append(children, it)
		}
		return &unionIter{children: children}, nil

	case *plan.Sort:
		input, err := b.Build(n.Input)
		if err != nil {
			return nil, err
		}
		keys, err := b.sortKeys(n)
		if err != nil {
			return nil, err
		}
		return &sortIter{input: input, keys: keys, gov: b.gov}, nil

	case *plan.Limit:
		// LIMIT directly above ORDER BY: fuse into a bounded top-k heap
		// (O(k) memory, O(n log k) comparisons) instead of a full sort.
		// Tie-breaking by input order makes it result-identical to the
		// stable sort.
		if srt, ok := n.Input.(*plan.Sort); ok && n.Count >= 0 && n.Offset >= 0 {
			// The Sort node is bypassed by the fusion, so its vectorization
			// decline (when the batch top-k didn't take the pair) is
			// counted here.
			if b.vecSize > 0 {
				b.countVecFallback(srt)
			}
			input, err := b.Build(srt.Input)
			if err != nil {
				return nil, err
			}
			keys, err := b.sortKeys(srt)
			if err != nil {
				return nil, err
			}
			if b.met != nil {
				b.met.TopKFusions.Inc()
			}
			if b.analyze {
				b.nodeStats(srt).Note = fmt.Sprintf("fused into top_k=%d", n.Offset+n.Count)
			}
			return &topKIter{input: input, keys: keys, offset: n.Offset, count: n.Count, gov: b.gov}, nil
		}
		input, err := b.Build(n.Input)
		if err != nil {
			return nil, err
		}
		// LIMIT directly above a filter-less vectorized scan: every
		// input row survives the fragment, so the limit bounds exactly
		// how many rows the adapter will ever decode. Clamp the batch
		// size so a small page doesn't fill and box a full batch.
		if vri, ok := input.(*vecRowsIter); ok && !vri.spec.hasFilter() && n.Count >= 0 && n.Offset >= 0 {
			if need := n.Offset + n.Count; need > 0 && need < int64(vri.batchSize) {
				vri.batchSize = int(need)
			}
		}
		return &limitIter{input: input, count: n.Count, offset: n.Offset}, nil

	case *plan.Distinct:
		input, err := b.Build(n.Input)
		if err != nil {
			return nil, err
		}
		return &distinctIter{input: input, gov: b.gov}, nil

	case *plan.Values:
		var rows []types.Row
		empty := map[types.ColumnID]int{}
		for _, exprRow := range n.Rows {
			row := make(types.Row, len(exprRow))
			for i, e := range exprRow {
				fn, err := Compile(e, empty)
				if err != nil {
					return nil, err
				}
				v, err := fn(nil)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
		return &valuesIter{rows: rows}, nil
	}
	return nil, fmt.Errorf("exec: cannot build %T", n)
}

func (b *Builder) buildJoin(n *plan.Join) (Iterator, error) {
	left, err := b.Build(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.Build(n.Right)
	if err != nil {
		return nil, err
	}
	if n.Kind == plan.CrossJoin {
		return &crossJoinIter{left: left, right: right, gov: b.gov}, nil
	}

	leftCols := plan.ColumnsOf(n.Left)
	rightCols := plan.ColumnsOf(n.Right)
	leftSlots := slotsOf(n.Left)
	rightSlots := slotsOf(n.Right)
	// Residual predicates see the concatenated left++right row, which
	// for semi/anti joins is wider than the node's output.
	combinedSlots := map[types.ColumnID]int{}
	for i, id := range n.Left.Columns() {
		combinedSlots[id] = i
	}
	off := len(n.Left.Columns())
	for i, id := range n.Right.Columns() {
		combinedSlots[id] = off + i
	}

	var leftKeys, rightKeys []EvalFn
	var residual []plan.Expr
	for _, conj := range plan.Conjuncts(n.Cond) {
		eq, ok := conj.(*plan.Bin)
		if ok && eq.Op == "=" {
			lUsed := plan.ColsUsed(eq.L)
			rUsed := plan.ColsUsed(eq.R)
			var lexpr, rexpr plan.Expr
			switch {
			case lUsed.SubsetOf(leftCols) && rUsed.SubsetOf(rightCols):
				lexpr, rexpr = eq.L, eq.R
			case lUsed.SubsetOf(rightCols) && rUsed.SubsetOf(leftCols):
				lexpr, rexpr = eq.R, eq.L
			}
			if lexpr != nil && !plan.ColsUsed(lexpr).Empty() && !plan.ColsUsed(rexpr).Empty() {
				lk, err := Compile(lexpr, leftSlots)
				if err != nil {
					return nil, err
				}
				rk, err := Compile(rexpr, rightSlots)
				if err != nil {
					return nil, err
				}
				leftKeys = append(leftKeys, lk)
				rightKeys = append(rightKeys, rk)
				continue
			}
		}
		residual = append(residual, conj)
	}
	var residualFn EvalFn
	if res := plan.AndAll(residual); res != nil {
		fn, err := Compile(res, combinedSlots)
		if err != nil {
			return nil, err
		}
		residualFn = fn
	}
	if n.Kind == plan.SemiJoin || n.Kind == plan.AntiJoin {
		return &semiJoinIter{
			left:      left,
			right:     right,
			anti:      n.Kind == plan.AntiJoin,
			nullAware: n.AntiNullAware,
			leftKeys:  leftKeys,
			rightKeys: rightKeys,
			residual:  residualFn,
			gov:       b.gov,
		}, nil
	}
	// Build-side choice: build the hash table on the left when the
	// optimizer's cost-based pass estimated the left input smaller
	// (n.BuildLeft), or when the anchor side is bounded (a limit pushed
	// across the augmentation join, §4.4) — the paper's point that limit
	// pushdown "directly impacts which side of the join builds the hash
	// table".
	if len(leftKeys) > 0 && (n.BuildLeft || (boundedSide(n.Left) && !boundedSide(n.Right))) {
		return &hashJoinBuildLeftIter{
			left:       left,
			right:      right,
			leftOuter:  n.Kind == plan.LeftOuterJoin,
			leftKeys:   leftKeys,
			rightKeys:  rightKeys,
			residual:   residualFn,
			rightWidth: len(n.Right.Columns()),
			gov:        b.gov,
		}, nil
	}
	return &hashJoinIter{
		left:       left,
		right:      right,
		leftOuter:  n.Kind == plan.LeftOuterJoin,
		leftKeys:   leftKeys,
		rightKeys:  rightKeys,
		residual:   residualFn,
		rightWidth: len(n.Right.Columns()),
		workers:    b.workers,
		met:        b.met,
		gov:        b.gov,
	}, nil
}

// sortKeys resolves a Sort node's keys to row positions.
func (b *Builder) sortKeys(n *plan.Sort) ([]sortKeySpec, error) {
	slots := slotsOf(n.Input)
	var keys []sortKeySpec
	for _, k := range n.Keys {
		idx, ok := slots[k.Col]
		if !ok {
			return nil, fmt.Errorf("exec: sort column #%d missing from input", k.Col)
		}
		keys = append(keys, sortKeySpec{idx: idx, desc: k.Desc})
	}
	return keys, nil
}

// extractRanges derives zone-map pruning ranges from filter conjuncts of
// the form `col op constant` over the scan's columns.
func extractRanges(cond plan.Expr, scan *plan.Scan) []storage.ColRange {
	ordOf := map[types.ColumnID]int{}
	for i, id := range scan.Cols {
		ordOf[id] = scan.Ords[i]
	}
	byOrd := map[int]*storage.ColRange{}
	get := func(ord int) *storage.ColRange {
		if r, ok := byOrd[ord]; ok {
			return r
		}
		r := &storage.ColRange{Ord: ord}
		byOrd[ord] = r
		return r
	}
	for _, conj := range plan.Conjuncts(cond) {
		bin, ok := conj.(*plan.Bin)
		if !ok {
			continue
		}
		cr, crOK := bin.L.(*plan.ColRef)
		k, kOK := bin.R.(*plan.Const)
		op := bin.Op
		if !crOK || !kOK {
			cr, crOK = bin.R.(*plan.ColRef)
			k, kOK = bin.L.(*plan.Const)
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		if !crOK || !kOK || k.Val.IsNull() {
			continue
		}
		ord, ok := ordOf[cr.ID]
		if !ok {
			continue
		}
		v := k.Val
		switch op {
		case "=":
			get(ord).Eq = &v
		case "<":
			get(ord).Hi, get(ord).HiOpen = &v, true
		case "<=":
			get(ord).Hi, get(ord).HiOpen = &v, false
		case ">":
			get(ord).Lo, get(ord).LoOpen = &v, true
		case ">=":
			get(ord).Lo, get(ord).LoOpen = &v, false
		}
	}
	var out []storage.ColRange
	for _, r := range byOrd {
		out = append(out, *r)
	}
	return out
}

// boundedSide reports whether the subtree's row count is bounded by a
// LIMIT reachable through row-preserving operators.
func boundedSide(n plan.Node) bool {
	switch n := n.(type) {
	case *plan.Limit:
		return n.Count >= 0
	case *plan.Project:
		return boundedSide(n.Input)
	case *plan.Filter:
		return boundedSide(n.Input)
	case *plan.Values:
		return true
	}
	return false
}

// Run materializes all rows of a plan. Under governance it is also the
// query's recover boundary inside the executor (panics become typed
// ErrInternal naming the operator), checks cancellation per batch of
// result rows, and meters the materialized result against the memory
// budget.
func (b *Builder) Run(n plan.Node) (rows []types.Row, err error) {
	if b.gov != nil {
		defer func() {
			if r := recover(); r != nil {
				rows, err = nil, panicErr(opName(n), r)
			}
		}()
		if err := b.gov.Err(); err != nil {
			return nil, err
		}
	}
	it, err := b.Build(n)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	if err := it.Open(); err != nil {
		return nil, err
	}
	acct := memAcct{gov: b.gov}
	defer acct.close()
	stride := govStride{gov: b.gov}
	var out []types.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
		if b.gov != nil {
			if err := acct.add(rowBytes(row)); err != nil {
				return nil, err
			}
			if err := stride.tick(); err != nil {
				return nil, err
			}
		}
	}
}
