package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"vdm/internal/plan"
)

// Query lifecycle governance: per-query cancellation, memory budgets,
// and panic isolation. A Governance instance is created by the engine
// for each query and attached to the Builder; every blocking operator
// checks it at batch/morsel granularity (never per row), so the
// overhead is one atomic load per govCheckRows rows while cancellation
// still propagates within a batch.

// Typed governance errors. All are errors.Is-matchable through whatever
// wrapping the engine adds on top.
var (
	// ErrCancelled reports that the query's context was cancelled.
	ErrCancelled = errors.New("exec: query cancelled")
	// ErrTimeout reports that the statement timeout (or a context
	// deadline) expired mid-query.
	ErrTimeout = errors.New("exec: statement timeout")
	// ErrMemoryBudget reports that the query exceeded its memory budget.
	ErrMemoryBudget = errors.New("exec: memory budget exceeded")
	// ErrInternal reports a panic recovered inside the executor or a
	// parallel worker; the query fails but the engine stays healthy.
	ErrInternal = errors.New("exec: internal error")
)

// Pause-point names: the fixed spots where governance hooks fire, one
// per blocking-operator family. Tests install Hooks that block at a
// point to pin a query mid-operator, then cancel/timeout/panic it
// deterministically.
const (
	// PointScan fires when a scan starts and once per parallel morsel.
	PointScan = "scan"
	// PointHashBuild fires when a join starts materializing its build
	// side (hash, semi, build-left, and cross joins).
	PointHashBuild = "hash_build"
	// PointGroupMerge fires when an aggregation starts consuming input
	// (serial) and once per parallel partial-aggregation morsel.
	PointGroupMerge = "groupby_merge"
	// PointTopK fires when a fused ORDER BY+LIMIT top-k starts.
	PointTopK = "topk"
	// PointSort fires when a full sort starts buffering input.
	PointSort = "sort"
)

// govCheckRows is the row stride between governance checks inside
// operator hot loops: one atomic context check per this many rows.
const govCheckRows = 1024

// memFlushBytes is how many locally-accumulated bytes an operator may
// hold before flushing them into the shared ResourceTracker, bounding
// both the atomic traffic and the budget-enforcement slack.
const memFlushBytes = 32 << 10

// Hooks are fault-injection points for governance tests, mirroring
// storage.TestHooks: OnPoint, when non-nil, is invoked every time an
// operator passes a pause point, OUTSIDE any locks, with the query's
// context — so a hook that blocks to pin an interleaving can (and
// should) unblock on ctx.Done(). A non-nil error fails the query.
// Production code never installs hooks; a nil *Hooks costs one nil
// check per pause point.
type Hooks struct {
	OnPoint func(ctx context.Context, point string) error
}

// ResourceTracker meters the bytes a query holds in blocking operators
// (hash tables, sort buffers, top-k heaps, group tables, materialized
// results) against a budget. All methods are safe for concurrent use by
// parallel workers. budget <= 0 disables enforcement; the tracker still
// records usage and peak.
type ResourceTracker struct {
	budget int64
	used   atomic.Int64
	peak   atomic.Int64
}

// Grow reserves n more bytes, failing with ErrMemoryBudget when the
// reservation would exceed the budget (the reservation is rolled back).
func (t *ResourceTracker) Grow(n int64) error {
	used := t.used.Add(n)
	if t.budget > 0 && used > t.budget {
		t.used.Add(-n)
		return fmt.Errorf("%w: query needs > %d bytes (budget %d)", ErrMemoryBudget, used, t.budget)
	}
	for {
		p := t.peak.Load()
		if used <= p || t.peak.CompareAndSwap(p, used) {
			return nil
		}
	}
}

// Release returns n bytes to the budget.
func (t *ResourceTracker) Release(n int64) { t.used.Add(-n) }

// Used returns the bytes currently reserved.
func (t *ResourceTracker) Used() int64 { return t.used.Load() }

// Peak returns the high-water mark of reserved bytes.
func (t *ResourceTracker) Peak() int64 { return t.peak.Load() }

// Governance bundles one query's cancellation context, resource
// tracker, and test hooks. A nil *Governance is fully inert: every
// method is nil-safe and free, so ungoverned builders (EXPLAIN
// cardinality checks, direct Builder use in tests) pay nothing.
type Governance struct {
	ctx     context.Context
	done    <-chan struct{}
	tracker ResourceTracker
	hooks   *Hooks
}

// NewGovernance returns a governance handle for one query. memoryBudget
// <= 0 means unlimited; hooks may be nil.
func NewGovernance(ctx context.Context, memoryBudget int64, hooks *Hooks) *Governance {
	g := &Governance{ctx: ctx, done: ctx.Done(), hooks: hooks}
	g.tracker.budget = memoryBudget
	return g
}

// ContextErr maps a context's error to the typed governance errors:
// deadline expiry to ErrTimeout, cancellation to ErrCancelled. It
// returns nil while ctx is live.
func ContextErr(ctx context.Context) error {
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	default:
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
}

// Err returns the typed cancellation/timeout error once the query's
// context is done, nil before (and always nil on a nil receiver). This
// is the strided check operators run every govCheckRows rows.
func (g *Governance) Err() error {
	if g == nil {
		return nil
	}
	select {
	case <-g.done:
		return ContextErr(g.ctx)
	default:
		return nil
	}
}

// Done exposes the query's cancellation channel (nil — block forever —
// on a nil receiver), for iterators that wait on worker channels.
func (g *Governance) Done() <-chan struct{} {
	if g == nil {
		return nil
	}
	return g.done
}

// Context returns the query context (context.Background on nil).
func (g *Governance) Context() context.Context {
	if g == nil {
		return context.Background()
	}
	return g.ctx
}

// point fires the named pause point: the test hook first (if any), then
// the cancellation check, so a hook that blocked until cancellation
// still surfaces the typed error.
func (g *Governance) point(name string) error {
	if g == nil {
		return nil
	}
	if h := g.hooks; h != nil && h.OnPoint != nil {
		if err := h.OnPoint(g.ctx, name); err != nil {
			return err
		}
	}
	return g.Err()
}

// grow reserves n bytes against the query budget (no-op on nil).
func (g *Governance) grow(n int64) error {
	if g == nil {
		return nil
	}
	return g.tracker.Grow(n)
}

// release returns n bytes (no-op on nil).
func (g *Governance) release(n int64) {
	if g != nil {
		g.tracker.Release(n)
	}
}

// PeakBytes returns the query's peak tracked memory (0 on nil).
func (g *Governance) PeakBytes() int64 {
	if g == nil {
		return 0
	}
	return g.tracker.Peak()
}

// Tracker exposes the query's resource tracker (nil on nil receiver).
func (g *Governance) Tracker() *ResourceTracker {
	if g == nil {
		return nil
	}
	return &g.tracker
}

// memAcct is one operator's memory account: bytes accumulate locally
// and flush into the shared tracker every memFlushBytes, so the per-row
// cost is a local add. Close (via the owning iterator's Close) releases
// everything. Not safe for concurrent use — parallel workers reserve
// through Governance.grow directly.
type memAcct struct {
	gov   *Governance
	held  int64 // flushed into the tracker
	local int64 // accumulated since the last flush
}

// add accounts n more bytes, enforcing the budget at flush granularity.
func (a *memAcct) add(n int64) error {
	a.local += n
	if a.local >= memFlushBytes {
		return a.flush()
	}
	return nil
}

// flush moves the local balance into the shared tracker.
func (a *memAcct) flush() error {
	if a.local == 0 {
		return nil
	}
	n := a.local
	a.local = 0
	if err := a.gov.grow(n); err != nil {
		return err
	}
	a.held += n
	return nil
}

// bytes returns everything the account has seen (EXPLAIN ANALYZE's
// mem_bytes column reads this after the operator is done).
func (a *memAcct) bytes() int64 { return a.held + a.local }

// close releases the flushed reservation back to the budget.
func (a *memAcct) close() {
	a.gov.release(a.held)
	a.held, a.local = 0, 0
}

// govStride spreads cancellation checks across hot loops: tick returns
// a non-nil typed error once per govCheckRows calls after the context
// is done.
type govStride struct {
	gov *Governance
	n   int
}

func (s *govStride) tick() error {
	s.n++
	if s.n >= govCheckRows {
		s.n = 0
		return s.gov.Err()
	}
	return nil
}

// panicErr converts a recovered panic into the typed ErrInternal,
// naming the operator (or worker) it escaped from.
func panicErr(op string, r any) error {
	return fmt.Errorf("%w: panic in %s: %v", ErrInternal, op, r)
}

// opName renders a plan node's type for panic attribution.
func opName(n plan.Node) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", n), "*plan.")
}
