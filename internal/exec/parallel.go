package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// Morsel-driven parallel execution. Base-table scans are split into
// fixed-size row ranges (morsels); a bounded worker pool claims morsels
// from an atomic counter and runs the whole scan→filter→project(→agg)
// pipeline fragment on each morsel before touching the next, so every
// morsel pays one lock acquisition and a couple of batch allocations
// instead of per-row costs. Results are merged back in morsel sequence
// order, which makes parallel execution produce rows in exactly the
// serial scan order — determinism the rest of the engine (ORDER BY
// stability, group first-seen order) relies on.

// DefaultMorselSize is the number of row positions per morsel when the
// caller does not configure one. Large enough to amortize scheduling
// and locking, small enough to keep the pool busy on skewed filters.
const DefaultMorselSize = 32768

// parallelBuildMinRows is the smallest build side worth partitioning
// across workers; below it a serial hash build is faster.
const parallelBuildMinRows = 1024

// SetParallel enables morsel-driven parallel execution for subsequent
// Build calls: workers is the pool size (values < 2 keep the serial
// path), morselSize the rows per morsel (0 = DefaultMorselSize).
func (b *Builder) SetParallel(workers, morselSize int) {
	if workers < 1 {
		workers = 1
	}
	if morselSize <= 0 {
		morselSize = DefaultMorselSize
	}
	b.workers = workers
	b.morselSize = morselSize
}

// SetMetrics directs executor counters (parallel pipelines, morsels,
// partitioned builds, top-k fusions) to m.
func (b *Builder) SetMetrics(m *Metrics) { b.met = m }

// --- morsel pipeline fragment ------------------------------------------

// morselSpec is a fused scan→filter→project pipeline fragment executed
// morsel-at-a-time. filter and project may be nil; EvalFn closures are
// pure, so one spec is shared by all workers.
type morselSpec struct {
	snap    *storage.Snapshot
	ords    []int
	ranges  []storage.ColRange
	filter  EvalFn
	project []EvalFn
	// vec, when set, runs the fragment through the vectorized batch
	// kernels (vecBatch rows per batch) instead of the row closures; the
	// morsel merge and ordering machinery is identical either way.
	vec      *vecSpec
	vecBatch int
}

// run executes the fragment over row positions [lo, hi): collect
// visible positions (one lock, zone-map pruned), materialize them into
// a flat batch (one lock, column-at-a-time), then filter and project in
// place. idxBuf is a worker-local scratch slice returned for reuse.
func (m *morselSpec) run(lo, hi int, idxBuf []int) ([]types.Row, []int, error) {
	idxBuf = m.snap.CollectVisible(lo, hi, m.ranges, idxBuf[:0])
	if len(idxBuf) == 0 {
		return nil, idxBuf, nil
	}
	w := len(m.ords)
	flat := make(types.Row, len(idxBuf)*w)
	m.snap.FillRows(idxBuf, m.ords, flat)
	rows := make([]types.Row, len(idxBuf))
	for i := range rows {
		rows[i] = flat[i*w : (i+1)*w : (i+1)*w]
	}
	if m.filter != nil {
		kept := rows[:0]
		for _, r := range rows {
			v, err := m.filter(r)
			if err != nil {
				return nil, idxBuf, err
			}
			if !v.IsNull() && v.Bool() {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	if len(m.project) > 0 {
		pw := len(m.project)
		pflat := make(types.Row, len(rows)*pw)
		for i, r := range rows {
			out := pflat[i*pw : (i+1)*pw : (i+1)*pw]
			for k, fn := range m.project {
				v, err := fn(r)
				if err != nil {
					return nil, idxBuf, err
				}
				out[k] = v
			}
			rows[i] = out
		}
	}
	return rows, idxBuf, nil
}

// morselCount returns how many morsels of the given size cover the
// spec's snapshot.
func (m *morselSpec) morselCount(size int) int {
	total := m.snap.NumRowVersions()
	return (total + size - 1) / size
}

// collectMorsels runs work for every morsel seq in [0, count) across a
// bounded worker pool and returns the results in sequence order. It
// waits for all workers; the first error (by sequence) wins. A panic
// inside work is confined to its morsel and surfaces as a typed
// ErrInternal — a worker goroutine must never crash the process.
func collectMorsels[T any](count, workers int, work func(seq int) (T, error)) ([]T, error) {
	results := make([]T, count)
	errs := make([]error, count)
	if workers > count {
		workers = count
	}
	var claim int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := int(atomic.AddInt64(&claim, 1)) - 1
				if seq >= count {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[seq] = panicErr("parallel worker", r)
						}
					}()
					results[seq], errs[seq] = work(seq)
				}()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// --- parallel scan ------------------------------------------------------

// seqBatch is one morsel's output, tagged with its sequence number so
// the consumer can restore scan order.
type seqBatch struct {
	seq  int
	rows []types.Row
	err  error
}

// parallelScanIter streams a morselSpec's output through a worker pool,
// re-ordering completed morsels so rows are emitted in serial scan
// order. Workers stop as soon as the iterator is closed, so a LIMIT
// above still terminates early.
type parallelScanIter struct {
	spec       *morselSpec
	workers    int
	morselSize int
	met        *Metrics
	gov        *Governance

	morsels int
	started int
	claim   int64
	batches chan seqBatch
	stop    chan struct{}
	wg      sync.WaitGroup

	next    int
	pending map[int]seqBatch
	cur     []types.Row
	curPos  int
	unpin   func()
}

func (s *parallelScanIter) Open() error {
	// Register the scan's snapshot timestamp in the DB watermark for the
	// iterator's lifetime: morsel workers re-acquire the table lock per
	// batch, and the pin guarantees background version GC never reclaims
	// versions this timestamp can still see in the meantime.
	s.unpin = s.spec.snap.Pin()
	s.morsels = s.spec.morselCount(s.morselSize)
	s.next, s.cur, s.curPos = 0, nil, 0
	s.claim = 0
	s.pending = make(map[int]seqBatch)
	s.stop = make(chan struct{})
	s.batches = make(chan seqBatch, s.workers)
	s.started = s.workers
	if s.started > s.morsels {
		s.started = s.morsels
	}
	for w := 0; w < s.started; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var idxBuf []int
			var vsc *vecScratch
			if s.spec.vec != nil {
				vsc = newVecScratch(s.spec.vec)
			}
			for {
				select {
				case <-s.stop:
					return
				default:
				}
				seq := int(atomic.AddInt64(&s.claim, 1)) - 1
				if seq >= s.morsels {
					return
				}
				rows, buf, err := s.runMorsel(seq, idxBuf, vsc)
				idxBuf = buf
				select {
				case s.batches <- seqBatch{seq: seq, rows: rows, err: err}:
				case <-s.stop:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	if s.met != nil {
		s.met.ParallelPipelines.Inc()
		s.met.MorselsScanned.Add(int64(s.morsels))
		if s.spec.vec != nil {
			s.met.VecPipelines.Inc()
		}
	}
	return nil
}

// runMorsel executes one morsel with a recover boundary (a panic fails
// only this query, typed ErrInternal) and a governance check so a
// cancelled query stops claiming work mid-scan.
func (s *parallelScanIter) runMorsel(seq int, idxBuf []int, vsc *vecScratch) (rows []types.Row, buf []int, err error) {
	buf = idxBuf
	defer func() {
		if r := recover(); r != nil {
			rows, err = nil, panicErr("parallel scan worker", r)
		}
	}()
	if err := s.gov.point(PointScan); err != nil {
		return nil, buf, err
	}
	lo := seq * s.morselSize
	if v := s.spec.vec; v != nil {
		rows, err = v.collectRows(lo, lo+s.morselSize, s.spec.vecBatch, vsc)
		return rows, buf, err
	}
	rows, buf, err = s.spec.run(lo, lo+s.morselSize, buf)
	return rows, buf, err
}

func (s *parallelScanIter) Next() (types.Row, bool, error) {
	for {
		if s.curPos < len(s.cur) {
			row := s.cur[s.curPos]
			s.curPos++
			return row, true, nil
		}
		if s.next >= s.morsels {
			return nil, false, nil
		}
		if b, ok := s.pending[s.next]; ok {
			delete(s.pending, s.next)
			if b.err != nil {
				return nil, false, b.err
			}
			s.cur, s.curPos = b.rows, 0
			s.next++
			continue
		}
		// Also wake on cancellation: a worker pinned inside a test hook
		// (or stalled storage) must not wedge the consumer.
		var b seqBatch
		select {
		case b = <-s.batches:
		case <-s.gov.Done():
			return nil, false, s.gov.Err()
		}
		if b.err != nil {
			return nil, false, b.err
		}
		s.pending[b.seq] = b
	}
}

func (s *parallelScanIter) Close() {
	if s.stop != nil {
		close(s.stop)
		s.wg.Wait()
		s.stop = nil
	}
	if s.unpin != nil {
		s.unpin()
		s.unpin = nil
	}
	s.pending = nil
	s.cur = nil
}

func (s *parallelScanIter) extraStats(st *OpStats) {
	st.Workers = int64(s.started)
	st.Morsels = int64(s.morsels)
}

// --- parallel group by --------------------------------------------------

// pAggState is one aggregate's per-morsel partial state. For DISTINCT
// aggregates it records the locally-new values in first-seen order;
// the merge replays them against the global seen-set so the final
// state is identical to a serial run.
type pAggState struct {
	aggState
	dvals []types.Value
}

// pgEntry is one group's partial result within a single morsel.
type pgEntry struct {
	key       string
	groupVals types.Row
	states    []pAggState
}

// mergeEntry is one group's final state, built by folding per-morsel
// partials in sequence order.
type mergeEntry struct {
	groupVals types.Row
	states    []aggState
}

// parallelGroupByIter computes partial aggregates per morsel across a
// worker pool, then merges the partial tables in morsel order. Group
// output order equals the serial first-seen order because morsels are
// merged in scan order.
type parallelGroupByIter struct {
	spec       *morselSpec
	workers    int
	morselSize int
	met        *Metrics
	gov        *Governance
	acct       memAcct
	// vagg, when set, folds each morsel through the vectorized
	// aggregation kernels instead of the row partial fold; the partials,
	// merge, and finalize are shared, so the output is identical.
	vagg *vecAggSpec
	// parBytes tracks the per-morsel partial tables reserved directly
	// against the governance tracker by workers; released after the
	// merge (Close as a backstop on error paths).
	parBytes atomic.Int64

	groupIdx  []int
	aggs      []groupSpec
	scalarAgg bool

	groups []types.Row
	pos    int
}

func (g *parallelGroupByIter) Open() error {
	// The aggregation materializes fully inside Open, so the snapshot
	// only needs its watermark pin for the duration of the morsel sweep.
	unpin := g.spec.snap.Pin()
	defer unpin()
	g.acct = memAcct{gov: g.gov}
	morsels := g.spec.morselCount(g.morselSize)
	work := func(seq int) ([]*pgEntry, error) {
		if err := g.gov.point(PointGroupMerge); err != nil {
			return nil, err
		}
		lo := seq * g.morselSize
		rows, _, err := g.spec.run(lo, lo+g.morselSize, nil)
		if err != nil {
			return nil, err
		}
		entries, err := g.partialAgg(rows)
		if err != nil {
			return nil, err
		}
		// Reserve the morsel's partial-table footprint; workers share
		// the tracker, so a query blowing its budget fails here no
		// matter which worker crosses the line.
		if mb := partialBytes(entries, len(g.aggs)); mb > 0 {
			if err := g.gov.grow(mb); err != nil {
				return nil, err
			}
			g.parBytes.Add(mb)
		}
		return entries, nil
	}
	if g.vagg != nil {
		work = func(seq int) ([]*pgEntry, error) {
			if err := g.gov.point(PointGroupMerge); err != nil {
				return nil, err
			}
			lo := seq * g.morselSize
			t := newVecAggTable(g.vagg)
			sc := newVecScratch(g.vagg.spec)
			if err := t.foldRange(lo, lo+g.morselSize, sc); err != nil {
				return nil, err
			}
			entries := t.order
			if mb := partialBytes(entries, len(g.aggs)); mb > 0 {
				if err := g.gov.grow(mb); err != nil {
					return nil, err
				}
				g.parBytes.Add(mb)
			}
			return entries, nil
		}
	}
	if g.starOnly() {
		// count(*)-only over an unfiltered scan: count visibility per
		// morsel without materializing any rows.
		work = func(seq int) ([]*pgEntry, error) {
			if err := g.gov.point(PointGroupMerge); err != nil {
				return nil, err
			}
			lo := seq * g.morselSize
			n := g.spec.snap.CountVisible(lo, lo+g.morselSize, g.spec.ranges)
			e := &pgEntry{states: make([]pAggState, len(g.aggs))}
			for i := range e.states {
				e.states[i].count = int64(n)
			}
			return []*pgEntry{e}, nil
		}
	}
	partials, err := collectMorsels(morsels, g.workers, work)
	if err != nil {
		return err
	}
	final := make(map[string]*mergeEntry)
	var order []*mergeEntry
	stride := govStride{gov: g.gov}
	for _, tbl := range partials {
		for _, e := range tbl {
			if err := stride.tick(); err != nil {
				return err
			}
			f, ok := final[e.key]
			if !ok {
				f = &mergeEntry{groupVals: e.groupVals, states: make([]aggState, len(g.aggs))}
				final[e.key] = f
				order = append(order, f)
				if err := g.acct.add(int64(len(e.key)) + rowBytes(e.groupVals) + int64(len(g.aggs))*aggStateBytes); err != nil {
					return err
				}
			}
			for i := range g.aggs {
				if err := mergeAggState(&f.states[i], &g.aggs[i], &e.states[i], &g.acct); err != nil {
					return err
				}
			}
		}
	}
	if len(order) == 0 && g.scalarAgg {
		order = append(order, &mergeEntry{states: make([]aggState, len(g.aggs))})
	}
	for _, e := range order {
		out := make(types.Row, 0, len(e.groupVals)+len(g.aggs))
		out = append(out, e.groupVals...)
		for i := range g.aggs {
			v, err := finalize(&e.states[i], &g.aggs[i])
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		if err := g.acct.add(rowBytes(out)); err != nil {
			return err
		}
		g.groups = append(g.groups, out)
	}
	g.pos = 0
	// The per-morsel partials are garbage once merged; return their
	// reservation to the budget.
	g.releasePartials()
	if g.met != nil {
		g.met.ParallelPipelines.Inc()
		g.met.MorselsScanned.Add(int64(morsels))
		if g.vagg != nil {
			g.met.VecPipelines.Inc()
		}
	}
	return nil
}

// releasePartials returns the workers' partial-table reservation.
func (g *parallelGroupByIter) releasePartials() {
	if n := g.parBytes.Swap(0); n > 0 {
		g.gov.release(n)
	}
}

// partialBytes estimates one morsel partial table's footprint.
func partialBytes(entries []*pgEntry, aggs int) int64 {
	var mb int64
	for _, e := range entries {
		mb += int64(len(e.key)) + rowBytes(e.groupVals) + int64(aggs)*aggStateBytes
		for i := range e.states {
			mb += rowBytes(types.Row(e.states[i].dvals))
		}
	}
	return mb
}

// starOnly reports whether the aggregation is a bare scalar count(*)
// over an unfiltered scan — the shape that needs no row values at all.
func (g *parallelGroupByIter) starOnly() bool {
	if !g.scalarAgg || g.spec.filter != nil {
		return false
	}
	if g.vagg != nil && g.vagg.spec.hasFilter() {
		return false
	}
	for i := range g.aggs {
		if !g.aggs[i].star {
			return false
		}
	}
	return true
}

// partialAgg folds one morsel's rows into an ordered partial table.
func (g *parallelGroupByIter) partialAgg(rows []types.Row) ([]*pgEntry, error) {
	if g.scalarAgg {
		// No group columns: a single state per morsel, no key encoding
		// or hash-table lookups on the per-row path.
		if len(rows) == 0 {
			return nil, nil
		}
		e := &pgEntry{states: make([]pAggState, len(g.aggs))}
		for _, row := range rows {
			for i := range g.aggs {
				if err := accumulatePartial(&e.states[i], &g.aggs[i], row); err != nil {
					return nil, err
				}
			}
		}
		return []*pgEntry{e}, nil
	}
	table := make(map[string]*pgEntry)
	var order []*pgEntry
	var keyBuf []byte
	for _, row := range rows {
		keyBuf = keyBuf[:0]
		for _, idx := range g.groupIdx {
			keyBuf = row[idx].AppendKey(keyBuf)
		}
		e, ok := table[string(keyBuf)]
		if !ok {
			groupVals := make(types.Row, len(g.groupIdx))
			for i, idx := range g.groupIdx {
				groupVals[i] = row[idx]
			}
			e = &pgEntry{key: string(keyBuf), groupVals: groupVals, states: make([]pAggState, len(g.aggs))}
			table[e.key] = e
			order = append(order, e)
		}
		for i := range g.aggs {
			if err := accumulatePartial(&e.states[i], &g.aggs[i], row); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// accumulatePartial is the morsel-local accumulate: DISTINCT values are
// only collected (deduplicated locally), everything else folds exactly
// as the serial accumulate does.
func accumulatePartial(st *pAggState, spec *groupSpec, row types.Row) error {
	if spec.star {
		st.count++
		return nil
	}
	v, err := spec.arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if spec.distinct {
		if st.distinct == nil {
			st.distinct = make(map[string]bool)
		}
		key := string(v.AppendKey(nil))
		if st.distinct[key] {
			return nil
		}
		st.distinct[key] = true
		st.dvals = append(st.dvals, v)
		return nil
	}
	st.count++
	return accumulateValue(&st.aggState, spec, v)
}

// sumValue renders a partial SUM/AVG state as a single value of the
// partial's dominant type, so merging reuses the serial promotion rules.
func sumValue(st *aggState) types.Value {
	switch st.sumTyp {
	case types.TFloat:
		return types.NewFloat(st.sumFloat)
	case types.TDecimal:
		return types.NewDecimal(st.sumDec)
	}
	return types.NewInt(st.sumInt)
}

// mergeAggState folds one morsel's partial state into the final state.
// DISTINCT values are replayed in first-seen order against the global
// seen-set (metered through acct); sums merge through the same
// promotion switch the serial accumulate uses, so int and decimal
// aggregates are bit-identical to a serial run (float sums may differ
// by association only).
func mergeAggState(dst *aggState, spec *groupSpec, src *pAggState, acct *memAcct) error {
	if spec.distinct {
		for _, v := range src.dvals {
			if dst.distinct == nil {
				dst.distinct = make(map[string]bool)
			}
			key := string(v.AppendKey(nil))
			if dst.distinct[key] {
				continue
			}
			dst.distinct[key] = true
			if err := acct.add(int64(len(key)) + 48); err != nil {
				return err
			}
			dst.count++
			if err := accumulateValue(dst, spec, v); err != nil {
				return err
			}
		}
		return nil
	}
	dst.count += src.count
	if !src.sawVal {
		return nil
	}
	switch spec.op {
	case plan.AggSum, plan.AggAvg:
		return accumulateValue(dst, spec, sumValue(&src.aggState))
	case plan.AggMin:
		return accumulateValue(dst, spec, src.min)
	case plan.AggMax:
		return accumulateValue(dst, spec, src.max)
	}
	return nil
}

func (g *parallelGroupByIter) Next() (types.Row, bool, error) {
	if g.pos >= len(g.groups) {
		return nil, false, nil
	}
	row := g.groups[g.pos]
	g.pos++
	return row, true, nil
}

func (g *parallelGroupByIter) Close() {
	g.releasePartials()
	g.acct.close()
	g.groups = nil
}

// --- partitioned hash-join build ----------------------------------------

// partTable is a hash-partitioned join build: partition p owns the keys
// with hash64(key) % len(parts) == p, so the partitions are disjoint
// and each can be built by one worker without locking.
type partTable struct {
	parts []map[string][]types.Row
}

func (p *partTable) lookup(key []byte) []types.Row {
	return p.parts[hash64(key)%uint64(len(p.parts))][string(key)]
}

// buildPartTable builds the hash table for materialized build rows in
// two parallel phases: key encoding (contiguous row chunks, one per
// worker) and partition insertion (one partition per worker, scanning
// rows in index order so per-key row order matches the serial build).
func buildPartTable(rows []types.Row, keys []EvalFn, workers int) (*partTable, error) {
	n := len(rows)
	keyOf := make([][]byte, n)
	partOf := make([]int32, n)
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = panicErr("parallel hash build worker", r)
				}
			}()
			var arena, buf []byte
			for i := lo; i < hi; i++ {
				key, null, err := appendEvalKey(buf[:0], rows[i], keys)
				buf = key[:0]
				if err != nil {
					errs[w] = err
					return
				}
				if null {
					partOf[i] = -1 // NULL keys never match
					continue
				}
				// Copy the key into a worker-local arena so keyOf entries
				// stay valid while buf is reused (previous arenas remain
				// alive through the slices that point into them).
				if len(arena)+len(key) > cap(arena) {
					size := 4096
					if len(key) > size {
						size = len(key)
					}
					arena = make([]byte, 0, size)
				}
				start := len(arena)
				arena = append(arena, key...)
				keyOf[i] = arena[start:len(arena):len(arena)]
				partOf[i] = int32(hash64(keyOf[i]) % uint64(workers))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	pt := &partTable{parts: make([]map[string][]types.Row, workers)}
	insErrs := make([]error, workers)
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					insErrs[p] = panicErr("parallel hash build worker", r)
				}
			}()
			m := make(map[string][]types.Row)
			for i, pi := range partOf {
				if int(pi) == p {
					m[string(keyOf[i])] = append(m[string(keyOf[i])], rows[i])
				}
			}
			pt.parts[p] = m
		}(p)
	}
	wg.Wait()
	for _, err := range insErrs {
		if err != nil {
			return nil, err
		}
	}
	return pt, nil
}

// --- parallel plan recognition ------------------------------------------

// buildParallel recognizes plan shapes executable as fused morsel
// pipelines. handled=false falls back to the serial operators (which
// may still use parallel scans for their children).
func (b *Builder) buildParallel(n plan.Node) (it Iterator, handled bool, err error) {
	switch n := n.(type) {
	case *plan.Scan:
		spec, err := b.scanSpec(n, nil)
		if err != nil {
			return nil, true, err
		}
		return b.newParallelScan(spec), true, nil
	case *plan.Filter, *plan.Project:
		if b.analyze {
			// EXPLAIN ANALYZE keeps operator boundaries so every plan
			// line reports its own counters; only the scan runs parallel.
			return nil, false, nil
		}
		spec, ok, err := b.tryMorselSpec(n)
		if err != nil || !ok {
			return nil, ok, err
		}
		return b.newParallelScan(spec), true, nil
	case *plan.GroupBy:
		if b.analyze {
			return nil, false, nil
		}
		spec, ok, err := b.tryMorselSpec(n.Input)
		if err != nil || !ok {
			return nil, ok, err
		}
		it, err := b.newParallelGroupBy(n, spec)
		if err != nil {
			return nil, true, err
		}
		return it, true, nil
	}
	return nil, false, nil
}

// tryMorselSpec matches Scan, Filter(Scan), Project(Scan), and
// Project(Filter(Scan)) subtrees.
func (b *Builder) tryMorselSpec(n plan.Node) (*morselSpec, bool, error) {
	switch n := n.(type) {
	case *plan.Scan:
		spec, err := b.scanSpec(n, nil)
		return spec, true, err
	case *plan.Filter:
		scan, ok := n.Input.(*plan.Scan)
		if !ok {
			return nil, false, nil
		}
		spec, err := b.scanSpec(scan, n.Cond)
		return spec, true, err
	case *plan.Project:
		spec, ok, err := b.tryMorselSpec(n.Input)
		if err != nil {
			return nil, true, err
		}
		if !ok || spec.project != nil {
			return nil, false, nil
		}
		slots := slotsOf(n.Input)
		for _, c := range n.Cols {
			fn, err := Compile(c.Expr, slots)
			if err != nil {
				return nil, true, err
			}
			spec.project = append(spec.project, fn)
		}
		return spec, true, nil
	}
	return nil, false, nil
}

// scanSpec builds the morsel fragment for a scan with an optional fused
// filter (range constraints are extracted for zone-map pruning, exactly
// as the serial fused-scan path does).
func (b *Builder) scanSpec(scan *plan.Scan, cond plan.Expr) (*morselSpec, error) {
	tbl, ok := b.db.Table(scan.Info.Name)
	if !ok {
		return nil, fmt.Errorf("exec: table %s does not exist", scan.Info.Name)
	}
	spec := &morselSpec{snap: tbl.SnapshotAt(b.ts), ords: scan.Ords}
	if cond != nil {
		spec.ranges = extractRanges(cond, scan)
		fn, err := Compile(cond, slotsOf(scan))
		if err != nil {
			return nil, err
		}
		spec.filter = fn
	}
	return spec, nil
}

func (b *Builder) newParallelScan(spec *morselSpec) Iterator {
	return &parallelScanIter{spec: spec, workers: b.workers, morselSize: b.morselSize, met: b.met, gov: b.gov}
}

func (b *Builder) newParallelGroupBy(n *plan.GroupBy, spec *morselSpec) (Iterator, error) {
	slots := slotsOf(n.Input)
	it := &parallelGroupByIter{
		spec:       spec,
		workers:    b.workers,
		morselSize: b.morselSize,
		met:        b.met,
		gov:        b.gov,
		scalarAgg:  len(n.GroupCols) == 0,
	}
	for _, g := range n.GroupCols {
		idx, ok := slots[g]
		if !ok {
			return nil, fmt.Errorf("exec: group column #%d missing from input", g)
		}
		it.groupIdx = append(it.groupIdx, idx)
	}
	for _, a := range n.Aggs {
		spec := groupSpec{op: a.Op, star: a.Star, distinct: a.Distinct, typ: b.ctx.Type(a.ID)}
		if !a.Star {
			fn, err := Compile(a.Arg, slots)
			if err != nil {
				return nil, err
			}
			spec.arg = fn
		}
		it.aggs = append(it.aggs, spec)
	}
	return it, nil
}
