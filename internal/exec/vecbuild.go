package exec

import (
	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// Compilation of plan subtrees into vectorized batch operators. The
// optimizer stamps VecOK (plan.MarkVectorizable) on eligible shapes;
// this file turns those shapes into vecSpec pipeline fragments and the
// batch operators over them. Anything that fails to compile here simply
// declines (handled=false) and the row-at-a-time builder takes over —
// declining is always safe because the row path produces identical rows
// in identical order.

// SetVectorize enables the vectorized batch executor for subsequent
// Build calls: eligible scan/filter/project pipelines, aggregations, and
// hash joins run over column batches of the given size (<= 0 selects
// DefaultBatchSize). Off by default, so direct Builder users keep the
// row executor unless they opt in.
func (b *Builder) SetVectorize(batchSize int) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	b.vecSize = batchSize
}

// buildVec recognizes plan shapes executable by the batch operators.
// handled=false falls back to the row builder.
func (b *Builder) buildVec(n plan.Node) (Iterator, bool, error) {
	switch n := n.(type) {
	case *plan.Scan, *plan.Filter:
		return b.buildVecPipeline(n)
	case *plan.Project:
		if it, handled, err := b.buildVecProjectedJoin(n); handled {
			return it, handled, err
		}
		return b.buildVecPipeline(n)
	case *plan.GroupBy:
		return b.buildVecGroupBy(n)
	case *plan.Join:
		return b.buildVecJoin(n)
	}
	return nil, false, nil
}

// buildVecProjectedJoin fuses a Project of bare column refs over a
// batch-eligible Join into the join's emission loop, skipping one
// per-row copy for every joined row. Declined under analyze so the
// Project node keeps its own statIter counters.
func (b *Builder) buildVecProjectedJoin(n *plan.Project) (Iterator, bool, error) {
	j, ok := n.Input.(*plan.Join)
	if !ok || b.analyze {
		return nil, false, nil
	}
	combined := append([]types.ColumnID{}, j.Left.Columns()...)
	combined = append(combined, j.Right.Columns()...)
	proj := make([]int, len(n.Cols))
	for i, c := range n.Cols {
		cr, ok := c.Expr.(*plan.ColRef)
		if !ok {
			return nil, false, nil
		}
		pos := -1
		for p, id := range combined {
			if id == cr.ID {
				pos = p
				break
			}
		}
		if pos < 0 {
			return nil, false, nil
		}
		proj[i] = pos
	}
	it, handled, err := b.buildVecJoin(j)
	if !handled || err != nil {
		return it, handled, err
	}
	it.(*vecHashJoinIter).proj = proj
	return it, true, nil
}

// vecFrag is a compiled pipeline fragment: the spec plus the mapping
// from output column IDs to batch columns, and the plan nodes it fused
// (scan first) for EXPLAIN ANALYZE attribution.
type vecFrag struct {
	spec              *vecSpec
	cols              []types.ColumnID
	nodes             []plan.Node
	filters, projects int
}

// batchCol returns the batch column holding the given output column.
func (f *vecFrag) batchCol(id types.ColumnID) (int, bool) {
	for i, c := range f.cols {
		if c == id {
			return f.spec.proj[i], true
		}
	}
	return 0, false
}

// rowPos returns the decoded-row position of the given output column.
func (f *vecFrag) rowPos(id types.ColumnID) (int, bool) {
	for i, c := range f.cols {
		if c == id {
			return i, true
		}
	}
	return 0, false
}

// vecFragment compiles a Scan / Filter / Project chain into a batch
// pipeline fragment, or declines.
func (b *Builder) vecFragment(n plan.Node) (*vecFrag, bool) {
	switch n := n.(type) {
	case *plan.Scan:
		if !n.VecOK {
			return nil, false
		}
		tbl, ok := b.db.Table(n.Info.Name)
		if !ok {
			return nil, false // the row path reports the error
		}
		spec := &vecSpec{snap: tbl.SnapshotAt(b.ts), ords: n.Ords, gov: b.gov, met: b.met}
		spec.proj = make([]int, len(n.Cols))
		for i := range spec.proj {
			spec.proj[i] = i
		}
		return &vecFrag{spec: spec, cols: n.Cols, nodes: []plan.Node{n}}, true

	case *plan.Filter:
		if !n.VecOK {
			return nil, false
		}
		f, ok := b.vecFragment(n.Input)
		if !ok {
			return nil, false
		}
		rb := rangeBuilder{ords: f.spec.ords}
		for _, conj := range plan.Conjuncts(n.Cond) {
			cmp, ok := makeVecCmp(f, conj, &rb)
			if !ok {
				return nil, false
			}
			f.spec.filt = append(f.spec.filt, cmp)
		}
		f.spec.ranges = rb.ranges()
		f.nodes = append(f.nodes, n)
		f.filters++
		return f, true

	case *plan.Project:
		if !n.VecOK {
			return nil, false
		}
		f, ok := b.vecFragment(n.Input)
		if !ok {
			return nil, false
		}
		proj := make([]int, len(n.Cols))
		cols := make([]types.ColumnID, len(n.Cols))
		for i, c := range n.Cols {
			cr, ok := c.Expr.(*plan.ColRef)
			if !ok {
				return nil, false
			}
			bc, ok := f.batchCol(cr.ID)
			if !ok {
				return nil, false
			}
			proj[i], cols[i] = bc, c.ID
		}
		f.spec.proj, f.cols = proj, cols
		f.nodes = append(f.nodes, n)
		f.projects++
		return f, true
	}
	return nil, false
}

// rangeBuilder accumulates zone-map pruning ranges from compiled filter
// conjuncts, reproducing extractRanges' merge behavior (one ColRange per
// storage ordinal, later conjuncts overwrite earlier bounds).
type rangeBuilder struct {
	ords  []int
	byOrd map[int]*storage.ColRange
}

func (rb *rangeBuilder) get(batchCol int) *storage.ColRange {
	ord := rb.ords[batchCol]
	if rb.byOrd == nil {
		rb.byOrd = map[int]*storage.ColRange{}
	}
	if r, ok := rb.byOrd[ord]; ok {
		return r
	}
	r := &storage.ColRange{Ord: ord}
	rb.byOrd[ord] = r
	return r
}

// apply records one `col op literal` conjunct as a pruning bound.
func (rb *rangeBuilder) apply(batchCol int, op string, v types.Value) {
	if v.IsNull() {
		return
	}
	switch op {
	case "=":
		rb.get(batchCol).Eq = &v
	case "<":
		rb.get(batchCol).Hi, rb.get(batchCol).HiOpen = &v, true
	case "<=":
		rb.get(batchCol).Hi, rb.get(batchCol).HiOpen = &v, false
	case ">":
		rb.get(batchCol).Lo, rb.get(batchCol).LoOpen = &v, true
	case ">=":
		rb.get(batchCol).Lo, rb.get(batchCol).LoOpen = &v, false
	}
}

func (rb *rangeBuilder) ranges() []storage.ColRange {
	var out []storage.ColRange
	for _, r := range rb.byOrd {
		out = append(out, *r)
	}
	return out
}

// wantFor maps a comparison operator to the keep-mask over the
// comparison sign (-1, 0, +1).
func wantFor(op string) ([3]bool, bool) {
	switch op {
	case "=":
		return [3]bool{false, true, false}, true
	case "<>":
		return [3]bool{true, false, true}, true
	case "<":
		return [3]bool{true, false, false}, true
	case "<=":
		return [3]bool{true, true, false}, true
	case ">":
		return [3]bool{false, false, true}, true
	case ">=":
		return [3]bool{false, true, true}, true
	}
	return [3]bool{}, false
}

// makeVecCmp compiles one filter conjunct into a kernel, choosing the
// kind from the statically-known column/literal type pair so the kernel
// replicates types.Compare's promotion ladder exactly. Comparison
// conjuncts also feed the zone-map range builder.
func makeVecCmp(f *vecFrag, conj plan.Expr, rb *rangeBuilder) (vecCmp, bool) {
	switch e := conj.(type) {
	case *plan.Bin:
		cr, cok := e.L.(*plan.ColRef)
		k, kok := e.R.(*plan.Const)
		op := e.Op
		if !cok || !kok {
			cr, cok = e.R.(*plan.ColRef)
			k, kok = e.L.(*plan.Const)
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
			if !cok || !kok {
				return vecCmp{}, false
			}
		}
		want, ok := wantFor(op)
		if !ok {
			return vecCmp{}, false
		}
		bc, ok := f.batchCol(cr.ID)
		if !ok {
			return vecCmp{}, false
		}
		lit := k.Val
		c := vecCmp{col: bc, want: want}
		switch {
		case lit.IsNull():
			c.kind = vcNone
		case cr.Typ == types.TString && lit.Typ == types.TString:
			c.kind, c.str = vcStr, lit.Str()
		case cr.Typ == types.TBool && lit.Typ == types.TBool:
			c.kind, c.i64 = vcI64, lit.Int()
		case types.Numeric(cr.Typ) && types.Numeric(lit.Typ):
			switch {
			case cr.Typ == types.TInt && lit.Typ == types.TInt,
				cr.Typ == types.TDate && lit.Typ == types.TDate:
				c.kind, c.i64 = vcI64, lit.Int()
			case cr.Typ == types.TDecimal && lit.Typ == types.TDecimal:
				c.kind, c.dec = vcDec, lit.Decimal()
			default:
				// Mixed numeric types compare as float64, exactly the
				// types.Compare fallback.
				c.kind, c.f64 = vcF64, lit.Float()
			}
		default:
			return vecCmp{}, false
		}
		if op != "<>" {
			rb.apply(bc, op, lit)
		}
		return c, true

	case *plan.InListExpr:
		cr, ok := e.E.(*plan.ColRef)
		if !ok {
			return vecCmp{}, false
		}
		bc, ok := f.batchCol(cr.ID)
		if !ok {
			return vecCmp{}, false
		}
		c := vecCmp{kind: vcIn, col: bc, not: e.Not}
		for _, x := range e.List {
			k, ok := x.(*plan.Const)
			if !ok {
				return vecCmp{}, false
			}
			if k.Val.IsNull() {
				c.sawNullElem = true
				continue
			}
			c.list = append(c.list, k.Val)
		}
		return c, true

	case *plan.IsNullExpr:
		cr, ok := e.E.(*plan.ColRef)
		if !ok {
			return vecCmp{}, false
		}
		bc, ok := f.batchCol(cr.ID)
		if !ok {
			return vecCmp{}, false
		}
		return vecCmp{kind: vcIsNull, col: bc, not: e.Not}, true
	}
	return vecCmp{}, false
}

// attachVecStats wires EXPLAIN ANALYZE attribution for a fragment's
// fused nodes. The top node (when !includeTop) is counted by the
// statIter the Build caller wraps around the returned operator, so only
// its mode is stamped; inner nodes record rows/batches through the spec
// pointers. Fragments with duplicated stages can't be attributed
// per-node and decline (returning false) so analyze keeps exact
// per-operator counters on the row path.
func (b *Builder) attachVecStats(f *vecFrag, includeTop bool) bool {
	if f.filters > 1 || f.projects > 1 {
		return false
	}
	for i, node := range f.nodes {
		st := b.nodeStats(node)
		st.Mode = "vector"
		if !includeTop && i == len(f.nodes)-1 {
			continue
		}
		switch node.(type) {
		case *plan.Scan:
			f.spec.scanStats = st
		case *plan.Filter:
			f.spec.filterStats = st
		case *plan.Project:
			f.spec.projStats = st
		}
	}
	return true
}

// buildVecPipeline builds a bare batch pipeline behind the row-iterator
// adapter (or the morsel-parallel scan when workers are configured).
func (b *Builder) buildVecPipeline(n plan.Node) (Iterator, bool, error) {
	f, ok := b.vecFragment(n)
	if !ok {
		return nil, false, nil
	}
	if b.analyze && !b.attachVecStats(f, false) {
		return nil, false, nil
	}
	if b.workers > 1 {
		// Under analyze only a bare scan runs parallel (its counters come
		// from the wrapping statIter); fused stages keep their per-node
		// attribution single-threaded, mirroring the row path's policy.
		if _, bare := n.(*plan.Scan); bare || !b.analyze {
			spec := &morselSpec{snap: f.spec.snap, ords: f.spec.ords, ranges: f.spec.ranges, vec: f.spec, vecBatch: b.vecSize}
			return &parallelScanIter{spec: spec, workers: b.workers, morselSize: b.morselSize, met: b.met, gov: b.gov}, true, nil
		}
	}
	return &vecRowsIter{spec: f.spec, batchSize: b.vecSize}, true, nil
}

// buildVecGroupBy builds the batch aggregation operator (serial or
// morsel-parallel) over a compiled input pipeline.
func (b *Builder) buildVecGroupBy(n *plan.GroupBy) (Iterator, bool, error) {
	if !n.VecOK {
		return nil, false, nil
	}
	f, ok := b.vecFragment(n.Input)
	if !ok {
		return nil, false, nil
	}
	va := &vecAggSpec{spec: f.spec, scalarAgg: len(n.GroupCols) == 0, batchSize: b.vecSize}
	for _, g := range n.GroupCols {
		bc, ok := f.batchCol(g)
		if !ok {
			return nil, false, nil
		}
		va.groupCols = append(va.groupCols, bc)
	}
	for _, a := range n.Aggs {
		ac := vecAggCol{op: a.Op, star: a.Star, gspec: groupSpec{op: a.Op, star: a.Star, typ: b.ctx.Type(a.ID)}}
		if !a.Star {
			cr, ok := a.Arg.(*plan.ColRef)
			if !ok {
				return nil, false, nil
			}
			bc, ok := f.batchCol(cr.ID)
			if !ok {
				return nil, false, nil
			}
			ac.col = bc
		}
		va.aggs = append(va.aggs, ac)
	}
	if b.analyze {
		if !b.attachVecStats(f, true) {
			return nil, false, nil
		}
		b.nodeStats(n).Mode = "vector"
	}
	if b.workers > 1 && !b.analyze {
		g := &parallelGroupByIter{
			spec:       &morselSpec{snap: f.spec.snap, ords: f.spec.ords, ranges: f.spec.ranges},
			vagg:       va,
			workers:    b.workers,
			morselSize: b.morselSize,
			met:        b.met,
			gov:        b.gov,
			scalarAgg:  va.scalarAgg,
		}
		for i := range va.aggs {
			g.aggs = append(g.aggs, va.aggs[i].gspec)
		}
		return g, true, nil
	}
	return &vecGroupByIter{va: va, gov: b.gov, met: b.met}, true, nil
}

// buildVecJoin builds the batch hash join over two compiled pipelines.
func (b *Builder) buildVecJoin(n *plan.Join) (Iterator, bool, error) {
	if !n.VecOK {
		return nil, false, nil
	}
	lf, ok := b.vecFragment(n.Left)
	if !ok {
		return nil, false, nil
	}
	rf, ok := b.vecFragment(n.Right)
	if !ok {
		return nil, false, nil
	}
	var leftPos, rightPos []int
	var leftTyps, rightTyps []types.Type
	for _, conj := range plan.Conjuncts(n.Cond) {
		eq, ok := conj.(*plan.Bin)
		if !ok || eq.Op != "=" {
			return nil, false, nil
		}
		a, ok := eq.L.(*plan.ColRef)
		if !ok {
			return nil, false, nil
		}
		c, ok := eq.R.(*plan.ColRef)
		if !ok {
			return nil, false, nil
		}
		lc, rc := a, c
		lp, lok := lf.rowPos(lc.ID)
		rp, rok := rf.rowPos(rc.ID)
		if !lok || !rok {
			lc, rc = c, a
			lp, lok = lf.rowPos(lc.ID)
			rp, rok = rf.rowPos(rc.ID)
			if !lok || !rok {
				return nil, false, nil
			}
		}
		leftPos, rightPos = append(leftPos, lp), append(rightPos, rp)
		leftTyps, rightTyps = append(leftTyps, lc.Typ), append(rightTyps, rc.Typ)
	}
	keyKind := jkBytes
	if len(leftPos) == 1 {
		switch {
		case intKeyType(leftTyps[0]) && intKeyType(rightTyps[0]):
			keyKind = jkInt
		case leftTyps[0] == types.TString && rightTyps[0] == types.TString:
			keyKind = jkStr
		}
	}
	buildLeft := n.BuildLeft || (boundedSide(n.Left) && !boundedSide(n.Right))
	if b.analyze {
		if !b.attachVecStats(lf, true) || !b.attachVecStats(rf, true) {
			return nil, false, nil
		}
		b.nodeStats(n).Mode = "vector"
	}
	workers := b.workers
	if b.analyze {
		workers = 1 // keep inner-stage attribution single-threaded
	}
	it := &vecHashJoinIter{
		buildLeft:  buildLeft,
		leftOuter:  n.Kind == plan.LeftOuterJoin,
		keyKind:    keyKind,
		rightWidth: len(n.Right.Columns()),
		batchSize:  b.vecSize,
		workers:    workers,
		morselSize: b.morselSize,
		met:        b.met,
		gov:        b.gov,
	}
	if buildLeft {
		it.build, it.probe = lf.spec, rf.spec
		it.buildKeyPos, it.probeKeyPos = leftPos, rightPos
	} else {
		it.build, it.probe = rf.spec, lf.spec
		it.buildKeyPos, it.probeKeyPos = rightPos, leftPos
	}
	return it, true, nil
}

// intKeyType reports whether the type's AppendKey encoding is the
// shared integer tag (so typed int64 keys are byte-parity with it).
func intKeyType(t types.Type) bool {
	return t == types.TInt || t == types.TDate || t == types.TBool
}
