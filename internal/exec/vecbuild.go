package exec

import (
	"fmt"

	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// Compilation of plan subtrees into vectorized batch operators. The
// optimizer stamps VecOK (plan.MarkVectorizable) on eligible shapes;
// this file turns those shapes into vecSpec pipeline fragments and the
// batch operators over them. Anything that fails to compile here simply
// declines (handled=false) and the row-at-a-time builder takes over —
// declining is always safe because the row path produces identical rows
// in identical order.

// SetVectorize enables the vectorized batch executor for subsequent
// Build calls: eligible scan/filter/project pipelines, aggregations,
// hash joins, top-k sorts, DISTINCT, and UNION ALL branches run over
// column batches of the given size (<= 0 selects DefaultBatchSize). Off
// by default, so direct Builder users keep the row executor unless they
// opt in.
func (b *Builder) SetVectorize(batchSize int) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	b.vecSize = batchSize
}

// buildVec recognizes plan shapes executable by the batch operators.
// handled=false falls back to the row builder.
func (b *Builder) buildVec(n plan.Node) (Iterator, bool, error) {
	switch n := n.(type) {
	case *plan.Scan, *plan.Filter:
		return b.buildVecPipeline(n)
	case *plan.Project:
		if it, handled, err := b.buildVecProjectedJoin(n); handled {
			return it, handled, err
		}
		return b.buildVecPipeline(n)
	case *plan.GroupBy:
		return b.buildVecGroupBy(n)
	case *plan.Join:
		return b.buildVecJoin(n)
	case *plan.Limit:
		return b.buildVecTopK(n)
	case *plan.Distinct:
		return b.buildVecDistinct(n)
	}
	return nil, false, nil
}

// buildVecProjectedJoin fuses a Project of bare column refs over a
// batch-eligible Join into the join's emission loop, skipping one
// per-row copy for every joined row. Declined under analyze so the
// Project node keeps its own statIter counters.
func (b *Builder) buildVecProjectedJoin(n *plan.Project) (Iterator, bool, error) {
	j, ok := n.Input.(*plan.Join)
	if !ok || b.analyze {
		return nil, false, nil
	}
	combined := append([]types.ColumnID{}, j.Left.Columns()...)
	combined = append(combined, j.Right.Columns()...)
	proj := make([]int, len(n.Cols))
	for i, c := range n.Cols {
		cr, ok := c.Expr.(*plan.ColRef)
		if !ok {
			return nil, false, nil
		}
		pos := -1
		for p, id := range combined {
			if id == cr.ID {
				pos = p
				break
			}
		}
		if pos < 0 {
			return nil, false, nil
		}
		proj[i] = pos
	}
	it, handled, err := b.buildVecJoin(j)
	if !handled || err != nil {
		return it, handled, err
	}
	it.(*vecHashJoinIter).proj = proj
	return it, true, nil
}

// vecFrag is a compiled pipeline fragment: the spec plus the mapping
// from output column IDs to batch columns, the plan nodes it fused
// (scan first, stages[i] ↔ nodes[i+1]) for EXPLAIN ANALYZE attribution,
// and the zone-map range builder accumulated across all filter stages.
type vecFrag struct {
	spec  *vecSpec
	cols  []types.ColumnID
	nodes []plan.Node
	rb    rangeBuilder
}

// batchCol returns the batch column holding the given output column.
func (f *vecFrag) batchCol(id types.ColumnID) (int, bool) {
	for i, c := range f.cols {
		if c == id {
			return f.spec.proj[i], true
		}
	}
	return 0, false
}

// rowPos returns the decoded-row position of the given output column.
func (f *vecFrag) rowPos(id types.ColumnID) (int, bool) {
	for i, c := range f.cols {
		if c == id {
			return i, true
		}
	}
	return 0, false
}

// vecFragment compiles a scan with any interleaving of Filter and
// Project stages into a batch pipeline fragment, or declines.
func (b *Builder) vecFragment(n plan.Node) (*vecFrag, bool) {
	switch n := n.(type) {
	case *plan.Scan:
		if !n.VecOK {
			return nil, false
		}
		tbl, ok := b.db.Table(n.Info.Name)
		if !ok {
			return nil, false // the row path reports the error
		}
		spec := &vecSpec{snap: tbl.SnapshotAt(b.ts), ords: n.Ords, numCols: len(n.Ords), gov: b.gov, met: b.met}
		spec.proj = make([]int, len(n.Cols))
		for i := range spec.proj {
			spec.proj[i] = i
		}
		return &vecFrag{spec: spec, cols: n.Cols, nodes: []plan.Node{n}, rb: rangeBuilder{ords: n.Ords}}, true

	case *plan.Filter:
		if !n.VecOK {
			return nil, false
		}
		f, ok := b.vecFragment(n.Input)
		if !ok {
			return nil, false
		}
		if !applyVecFilter(f, n) {
			return nil, false
		}
		return f, true

	case *plan.Project:
		if !n.VecOK {
			return nil, false
		}
		f, ok := b.vecFragment(n.Input)
		if !ok {
			return nil, false
		}
		if !applyVecProject(f, n) {
			return nil, false
		}
		return f, true
	}
	return nil, false
}

// applyVecFilter compiles one Filter node into a stage appended to the
// fragment.
func applyVecFilter(f *vecFrag, n *plan.Filter) bool {
	var st vecStage
	for _, conj := range plan.Conjuncts(n.Cond) {
		cmp, ok := makeVecCmp(f, conj, &f.rb)
		if !ok {
			return false
		}
		st.filt = append(st.filt, cmp)
	}
	f.spec.ranges = f.rb.ranges()
	f.spec.stages = append(f.spec.stages, st)
	f.nodes = append(f.nodes, n)
	return true
}

// applyVecProject compiles one Project node into a stage appended to
// the fragment.
func applyVecProject(f *vecFrag, n *plan.Project) bool {
	var st vecStage
	proj := make([]int, len(n.Cols))
	cols := make([]types.ColumnID, len(n.Cols))
	for i, c := range n.Cols {
		if cr, ok := c.Expr.(*plan.ColRef); ok {
			bc, ok := f.batchCol(cr.ID)
			if !ok {
				return false
			}
			proj[i], cols[i] = bc, c.ID
			continue
		}
		ex, ok := f.compileVecExpr(c.Expr)
		if !ok {
			return false
		}
		dst := f.spec.numCols
		f.spec.numCols++
		st.exprs = append(st.exprs, vecCompute{expr: ex, dst: dst})
		proj[i], cols[i] = dst, c.ID
	}
	f.spec.proj, f.cols = proj, cols
	f.spec.stages = append(f.spec.stages, st)
	f.nodes = append(f.nodes, n)
	return true
}

// rangeBuilder accumulates zone-map pruning ranges from compiled filter
// conjuncts, reproducing extractRanges' merge behavior (one ColRange per
// storage ordinal, later conjuncts overwrite earlier bounds). Computed
// projection columns have no storage ordinal and contribute no bounds.
type rangeBuilder struct {
	ords  []int
	byOrd map[int]*storage.ColRange
}

func (rb *rangeBuilder) get(batchCol int) *storage.ColRange {
	ord := rb.ords[batchCol]
	if rb.byOrd == nil {
		rb.byOrd = map[int]*storage.ColRange{}
	}
	if r, ok := rb.byOrd[ord]; ok {
		return r
	}
	r := &storage.ColRange{Ord: ord}
	rb.byOrd[ord] = r
	return r
}

// apply records one `col op literal` conjunct as a pruning bound.
func (rb *rangeBuilder) apply(batchCol int, op string, v types.Value) {
	if v.IsNull() || batchCol >= len(rb.ords) {
		return
	}
	switch op {
	case "=":
		rb.get(batchCol).Eq = &v
	case "<":
		rb.get(batchCol).Hi, rb.get(batchCol).HiOpen = &v, true
	case "<=":
		rb.get(batchCol).Hi, rb.get(batchCol).HiOpen = &v, false
	case ">":
		rb.get(batchCol).Lo, rb.get(batchCol).LoOpen = &v, true
	case ">=":
		rb.get(batchCol).Lo, rb.get(batchCol).LoOpen = &v, false
	}
}

func (rb *rangeBuilder) ranges() []storage.ColRange {
	var out []storage.ColRange
	for _, r := range rb.byOrd {
		out = append(out, *r)
	}
	return out
}

// wantFor maps a comparison operator to the keep-mask over the
// comparison sign (-1, 0, +1).
func wantFor(op string) ([3]bool, bool) {
	switch op {
	case "=":
		return [3]bool{false, true, false}, true
	case "<>":
		return [3]bool{true, false, true}, true
	case "<":
		return [3]bool{true, false, false}, true
	case "<=":
		return [3]bool{true, true, false}, true
	case ">":
		return [3]bool{false, false, true}, true
	case ">=":
		return [3]bool{false, true, true}, true
	}
	return [3]bool{}, false
}

// makeVecCmp compiles one filter conjunct into a kernel: the dedicated
// column-vs-literal, IN, and IS NULL kernels when the shape matches; an
// OR-tree kernel for disjunctions; and the general expression kernel for
// any other total boolean expression. Comparison conjuncts feed the
// zone-map range builder (rb nil inside OR branches: a branch bound is
// not a global bound — the whole OR contributes its enclosing range
// instead).
func makeVecCmp(f *vecFrag, conj plan.Expr, rb *rangeBuilder) (vecCmp, bool) {
	switch e := conj.(type) {
	case *plan.Bin:
		if e.Op == "OR" {
			return makeVecOr(f, e, rb)
		}
		if c, ok := makeSimpleCmp(f, e, rb); ok {
			return c, true
		}

	case *plan.InListExpr:
		if cr, ok := e.E.(*plan.ColRef); ok {
			if bc, ok := f.batchCol(cr.ID); ok {
				c := vecCmp{kind: vcIn, col: bc, not: e.Not}
				consts := true
				for _, x := range e.List {
					k, ok := x.(*plan.Const)
					if !ok {
						consts = false
						break
					}
					if k.Val.IsNull() {
						c.sawNullElem = true
						continue
					}
					c.list = append(c.list, k.Val)
				}
				if consts {
					return c, true
				}
			}
		}

	case *plan.IsNullExpr:
		if cr, ok := e.E.(*plan.ColRef); ok {
			if bc, ok := f.batchCol(cr.ID); ok {
				return vecCmp{kind: vcIsNull, col: bc, not: e.Not}, true
			}
		}
	}
	// General case: any total boolean expression runs as an expression
	// kernel whose non-NULL TRUE results keep the row.
	if t, ok := plan.VecExprType(conj); ok && t == types.TBool {
		if ex, ok := f.compileVecExpr(conj); ok {
			return vecCmp{kind: vcExpr, expr: ex}, true
		}
	}
	return vecCmp{}, false
}

// makeSimpleCmp compiles a column-vs-literal comparison into a dedicated
// kernel, choosing the kind from the statically-known type pair so the
// kernel replicates types.Compare's promotion ladder exactly.
func makeSimpleCmp(f *vecFrag, e *plan.Bin, rb *rangeBuilder) (vecCmp, bool) {
	cr, cok := e.L.(*plan.ColRef)
	k, kok := e.R.(*plan.Const)
	op := e.Op
	if !cok || !kok {
		cr, cok = e.R.(*plan.ColRef)
		k, kok = e.L.(*plan.Const)
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
		if !cok || !kok {
			return vecCmp{}, false
		}
	}
	want, ok := wantFor(op)
	if !ok {
		return vecCmp{}, false
	}
	bc, ok := f.batchCol(cr.ID)
	if !ok {
		return vecCmp{}, false
	}
	lit := k.Val
	c := vecCmp{col: bc, want: want}
	switch {
	case lit.IsNull():
		c.kind = vcNone
	case cr.Typ == types.TString && lit.Typ == types.TString:
		c.kind, c.str = vcStr, lit.Str()
		c.memo = f.spec.nMemos
		f.spec.nMemos++
	case cr.Typ == types.TBool && lit.Typ == types.TBool:
		c.kind, c.i64 = vcI64, lit.Int()
	case types.Numeric(cr.Typ) && types.Numeric(lit.Typ):
		switch {
		case cr.Typ == types.TInt && lit.Typ == types.TInt,
			cr.Typ == types.TDate && lit.Typ == types.TDate:
			c.kind, c.i64 = vcI64, lit.Int()
		case cr.Typ == types.TDecimal && lit.Typ == types.TDecimal:
			c.kind, c.dec = vcDec, lit.Decimal()
		default:
			// Mixed numeric types compare as float64, exactly the
			// types.Compare fallback.
			c.kind, c.f64 = vcF64, lit.Float()
		}
	default:
		return vecCmp{}, false
	}
	if rb != nil && op != "<>" {
		rb.apply(bc, op, lit)
	}
	return c, true
}

// makeVecOr compiles an OR tree: each disjunct's conjunct chain becomes
// one branch of selection kernels; at run time the per-branch survivor
// vectors merge by ordered union. When every branch is a comparison on
// the same column, the enclosing range of the branch bounds feeds the
// zone-map builder, so a multi-range OR still prunes blocks.
func makeVecOr(f *vecFrag, e *plan.Bin, rb *rangeBuilder) (vecCmp, bool) {
	c := vecCmp{kind: vcOr, bufBase: f.spec.nBufs}
	f.spec.nBufs += 4
	disj := plan.Disjuncts(e)
	for _, d := range disj {
		var chain []vecCmp
		for _, dc := range plan.Conjuncts(d) {
			k, ok := makeVecCmp(f, dc, nil)
			if !ok {
				return vecCmp{}, false
			}
			chain = append(chain, k)
		}
		c.branches = append(c.branches, chain)
	}
	if rb != nil {
		applyOrRange(f, rb, disj)
	}
	return c, true
}

// applyOrRange records the enclosing zone-map range of an OR whose every
// branch is a single `col op literal` comparison on one shared column:
// lo = min of the branch lower bounds, hi = max of the upper bounds,
// both closed (conservative). Any branch without a bound on a side
// leaves that side unbounded; any non-comparison branch (IS NULL, IN,
// AND chains) disables pruning for the whole OR.
func applyOrRange(f *vecFrag, rb *rangeBuilder, disj []plan.Expr) {
	var lo, hi *types.Value
	col := -1
	haveLo, haveHi := true, true
	for _, d := range disj {
		e, ok := d.(*plan.Bin)
		if !ok {
			return
		}
		cr, cok := e.L.(*plan.ColRef)
		k, kok := e.R.(*plan.Const)
		op := e.Op
		if !cok || !kok {
			cr, cok = e.R.(*plan.ColRef)
			k, kok = e.L.(*plan.Const)
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
			if !cok || !kok {
				return
			}
		}
		if k.Val.IsNull() {
			continue // branch keeps nothing: no contribution to the range
		}
		bc, ok := f.batchCol(cr.ID)
		if !ok || bc >= len(rb.ords) {
			return
		}
		if col == -1 {
			col = bc
		} else if col != bc {
			return // bounds on different columns: no single-column range
		}
		v := k.Val
		var blo, bhi *types.Value
		switch op {
		case "=":
			blo, bhi = &v, &v
		case "<", "<=":
			bhi = &v
		case ">", ">=":
			blo = &v
		default:
			return // <> admits everything: no pruning
		}
		if blo == nil {
			haveLo = false
		} else if haveLo {
			if lo == nil {
				lo = blo
			} else if c, err := types.Compare(*blo, *lo); err != nil {
				return
			} else if c < 0 {
				lo = blo
			}
		}
		if bhi == nil {
			haveHi = false
		} else if haveHi {
			if hi == nil {
				hi = bhi
			} else if c, err := types.Compare(*bhi, *hi); err != nil {
				return
			} else if c > 0 {
				hi = bhi
			}
		}
	}
	if col == -1 || (!haveLo && !haveHi) {
		return
	}
	r := rb.get(col)
	if haveLo && lo != nil {
		r.Lo, r.LoOpen = lo, false
	}
	if haveHi && hi != nil {
		r.Hi, r.HiOpen = hi, false
	}
}

// attachVecStats wires EXPLAIN ANALYZE attribution for a fragment's
// fused nodes: every node is stamped mode=vector, and each stage records
// rows/batches through its stage stats pointer (updated atomically, so
// morsel workers may share them). The top node (when !includeTop) is
// counted by the statIter the Build caller wraps around the returned
// operator, so only its mode is stamped.
func (b *Builder) attachVecStats(f *vecFrag, includeTop bool) {
	for i, node := range f.nodes {
		st := b.nodeStats(node)
		st.Mode = "vector"
		if !includeTop && i == len(f.nodes)-1 {
			continue
		}
		if i == 0 {
			f.spec.scanStats = st
		} else {
			f.spec.stages[i-1].stats = st
		}
	}
}

// buildVecPipeline builds a bare batch pipeline behind the row-iterator
// adapter (or the morsel-parallel scan when workers are configured).
func (b *Builder) buildVecPipeline(n plan.Node) (Iterator, bool, error) {
	f, ok := b.vecFragment(n)
	if !ok {
		return b.buildVecUnionPipeline(n)
	}
	if b.analyze {
		b.attachVecStats(f, false)
	}
	if b.workers > 1 {
		spec := &morselSpec{snap: f.spec.snap, ords: f.spec.ords, ranges: f.spec.ranges, vec: f.spec, vecBatch: b.vecSize}
		return &parallelScanIter{spec: spec, workers: b.workers, morselSize: b.morselSize, met: b.met, gov: b.gov}, true, nil
	}
	return &vecRowsIter{spec: f.spec, batchSize: b.vecSize}, true, nil
}

// buildVecUnionPipeline runs Filter/Project stages stacked over a
// UnionAll in batch mode: vecSources replays the outer stages onto
// every branch fragment, and the branches run back to back in branch
// order — exactly the row union's emission order.
func (b *Builder) buildVecUnionPipeline(n plan.Node) (Iterator, bool, error) {
	frags, ok := b.vecSources(n)
	if !ok || len(frags) < 2 {
		return nil, false, nil
	}
	if b.analyze {
		for _, f := range frags {
			b.attachVecStats(f, false)
		}
		b.stampVecUnion(n)
	}
	children := make([]Iterator, len(frags))
	for i, f := range frags {
		if b.workers > 1 {
			spec := &morselSpec{snap: f.spec.snap, ords: f.spec.ords, ranges: f.spec.ranges, vec: f.spec, vecBatch: b.vecSize}
			children[i] = &parallelScanIter{spec: spec, workers: b.workers, morselSize: b.morselSize, met: b.met, gov: b.gov}
		} else {
			children[i] = &vecRowsIter{spec: f.spec, batchSize: b.vecSize}
		}
	}
	return &unionIter{children: children}, true, nil
}

// buildVecGroupBy builds the batch aggregation operator (serial or
// morsel-parallel) over a compiled input pipeline.
func (b *Builder) buildVecGroupBy(n *plan.GroupBy) (Iterator, bool, error) {
	if !n.VecOK {
		return nil, false, nil
	}
	f, ok := b.vecFragment(n.Input)
	if !ok {
		return nil, false, nil
	}
	va := &vecAggSpec{spec: f.spec, scalarAgg: len(n.GroupCols) == 0, batchSize: b.vecSize}
	for _, g := range n.GroupCols {
		bc, ok := f.batchCol(g)
		if !ok {
			return nil, false, nil
		}
		va.groupCols = append(va.groupCols, bc)
	}
	for _, a := range n.Aggs {
		ac := vecAggCol{op: a.Op, star: a.Star, gspec: groupSpec{op: a.Op, star: a.Star, typ: b.ctx.Type(a.ID)}}
		if !a.Star {
			cr, ok := a.Arg.(*plan.ColRef)
			if !ok {
				return nil, false, nil
			}
			bc, ok := f.batchCol(cr.ID)
			if !ok {
				return nil, false, nil
			}
			ac.col = bc
		}
		va.aggs = append(va.aggs, ac)
	}
	if b.analyze {
		b.attachVecStats(f, true)
		b.nodeStats(n).Mode = "vector"
	}
	if b.workers > 1 {
		g := &parallelGroupByIter{
			spec:       &morselSpec{snap: f.spec.snap, ords: f.spec.ords, ranges: f.spec.ranges},
			vagg:       va,
			workers:    b.workers,
			morselSize: b.morselSize,
			met:        b.met,
			gov:        b.gov,
			scalarAgg:  va.scalarAgg,
		}
		for i := range va.aggs {
			g.aggs = append(g.aggs, va.aggs[i].gspec)
		}
		return g, true, nil
	}
	return &vecGroupByIter{va: va, gov: b.gov, met: b.met}, true, nil
}

// buildVecJoin builds the batch hash join over two compiled pipelines.
func (b *Builder) buildVecJoin(n *plan.Join) (Iterator, bool, error) {
	if !n.VecOK {
		return nil, false, nil
	}
	lf, ok := b.vecFragment(n.Left)
	if !ok {
		return nil, false, nil
	}
	rf, ok := b.vecFragment(n.Right)
	if !ok {
		return nil, false, nil
	}
	var leftPos, rightPos []int
	var leftTyps, rightTyps []types.Type
	for _, conj := range plan.Conjuncts(n.Cond) {
		eq, ok := conj.(*plan.Bin)
		if !ok || eq.Op != "=" {
			return nil, false, nil
		}
		a, ok := eq.L.(*plan.ColRef)
		if !ok {
			return nil, false, nil
		}
		c, ok := eq.R.(*plan.ColRef)
		if !ok {
			return nil, false, nil
		}
		lc, rc := a, c
		lp, lok := lf.rowPos(lc.ID)
		rp, rok := rf.rowPos(rc.ID)
		if !lok || !rok {
			lc, rc = c, a
			lp, lok = lf.rowPos(lc.ID)
			rp, rok = rf.rowPos(rc.ID)
			if !lok || !rok {
				return nil, false, nil
			}
		}
		leftPos, rightPos = append(leftPos, lp), append(rightPos, rp)
		leftTyps, rightTyps = append(leftTyps, lc.Typ), append(rightTyps, rc.Typ)
	}
	keyKind := jkBytes
	if len(leftPos) == 1 {
		switch {
		case intKeyType(leftTyps[0]) && intKeyType(rightTyps[0]):
			keyKind = jkInt
		case leftTyps[0] == types.TString && rightTyps[0] == types.TString:
			keyKind = jkStr
		}
	}
	buildLeft := n.BuildLeft || (boundedSide(n.Left) && !boundedSide(n.Right))
	if b.analyze {
		b.attachVecStats(lf, true)
		b.attachVecStats(rf, true)
		b.nodeStats(n).Mode = "vector"
	}
	it := &vecHashJoinIter{
		buildLeft:  buildLeft,
		leftOuter:  n.Kind == plan.LeftOuterJoin,
		keyKind:    keyKind,
		rightWidth: len(n.Right.Columns()),
		batchSize:  b.vecSize,
		workers:    b.workers,
		morselSize: b.morselSize,
		met:        b.met,
		gov:        b.gov,
	}
	if buildLeft {
		it.build, it.probe = lf.spec, rf.spec
		it.buildKeyPos, it.probeKeyPos = leftPos, rightPos
	} else {
		it.build, it.probe = rf.spec, lf.spec
		it.buildKeyPos, it.probeKeyPos = rightPos, leftPos
	}
	return it, true, nil
}

// vecSources compiles the input of a batch set operator (top-k or
// DISTINCT) into pipeline fragments: one for a plain pipeline, one per
// child for a UNION ALL of pipelines.
func (b *Builder) vecSources(n plan.Node) ([]*vecFrag, bool) {
	// Peel Filter/Project stages stacked above a UnionAll (the shape a
	// derived-table union binds to). The outer stages are replayed onto
	// every branch fragment, with the union's output column IDs aliased
	// positionally to each branch's outputs.
	var outer []plan.Node
	inner := n
peel:
	for {
		switch t := inner.(type) {
		case *plan.Filter:
			if !t.VecOK {
				break peel
			}
			outer = append(outer, t)
			inner = t.Input
		case *plan.Project:
			if !t.VecOK {
				break peel
			}
			outer = append(outer, t)
			inner = t.Input
		default:
			break peel
		}
	}
	if u, ok := inner.(*plan.UnionAll); ok {
		if !u.VecOK {
			return nil, false
		}
		frags := make([]*vecFrag, 0, len(u.Children))
		for _, c := range u.Children {
			f, ok := b.vecFragment(c)
			if !ok || len(f.cols) != len(u.Cols) {
				return nil, false
			}
			f.cols = append([]types.ColumnID(nil), u.Cols...)
			for i := len(outer) - 1; i >= 0; i-- {
				switch t := outer[i].(type) {
				case *plan.Filter:
					if !applyVecFilter(f, t) {
						return nil, false
					}
				case *plan.Project:
					if !applyVecProject(f, t) {
						return nil, false
					}
				}
			}
			frags = append(frags, f)
		}
		return frags, true
	}
	f, ok := b.vecFragment(n)
	if !ok {
		return nil, false
	}
	return []*vecFrag{f}, true
}

// stampVecUnion walks single-input operators below n and marks the
// first UnionAll found as vectorized in EXPLAIN ANALYZE — its branches
// were consumed as batch fragments, so the union node itself never ran.
func (b *Builder) stampVecUnion(n plan.Node) {
	for m := n; m != nil; {
		if u, ok := m.(*plan.UnionAll); ok {
			b.nodeStats(u).Mode = "vector"
			return
		}
		ins := m.Inputs()
		if len(ins) != 1 {
			return
		}
		m = ins[0]
	}
}

// intKeyType reports whether the type's AppendKey encoding is the
// shared integer tag (so typed int64 keys are byte-parity with it).
func intKeyType(t types.Type) bool {
	return t == types.TInt || t == types.TDate || t == types.TBool
}

// vecFallbackNote renders the EXPLAIN annotation for a node the
// vectorized executor declined, naming the reason.
func vecFallbackNote(n plan.Node) string {
	if r := plan.VecFallback(n); r != "" {
		return fmt.Sprintf("vec_fallback=%s", r)
	}
	return ""
}

// countVecFallback bumps the per-reason exec.vec_fallbacks counter for a
// node the batch executor declined. A bare ORDER BY counts as a sort
// fallback even when its input pipelines fine: the batch executor only
// runs bounded (LIMIT-fused) top-k sorts.
func (b *Builder) countVecFallback(n plan.Node) {
	if b.met == nil {
		return
	}
	reason := plan.VecFallback(n)
	if reason == "" {
		if _, ok := n.(*plan.Sort); ok {
			reason = "sort"
		} else {
			return
		}
	}
	switch reason {
	case "expression":
		b.met.VecFallbackExpression.Inc()
	case "or":
		b.met.VecFallbackOr.Inc()
	case "sort":
		b.met.VecFallbackSort.Inc()
	case "union":
		b.met.VecFallbackUnion.Inc()
	case "distinct":
		b.met.VecFallbackDistinct.Inc()
	}
}
