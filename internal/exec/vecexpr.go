package exec

import (
	"fmt"
	"strings"

	"vdm/internal/decimal"
	"vdm/internal/plan"
	"vdm/internal/types"
)

// Typed expression kernels over column batches. compileVecExpr turns a
// plan expression admitted by plan.VecExprType into a tree of vecExpr
// nodes, each evaluating one batch at a time into a reusable output
// vector. The compiled tree is immutable and shared across workers; all
// mutable state (output vectors, selection scratch) lives in vecScratch,
// indexed by compile-time slot numbers.
//
// Only total expressions are compiled (plan.VecExprType's admission
// rule), so evaluation can be eager and out of order: the batch path may
// evaluate a CASE arm or an AND operand on rows the row path would have
// skipped, which is observable only through errors — and total kernels
// have none. Each kernel replicates the row evaluator's exact semantics:
// Arith's promotion ladder, types.Compare's ladder, three-valued AND/OR
// (x AND y is FALSE whenever either side is non-NULL FALSE, even if the
// other is NULL), and callScalar's per-function NULL handling.
type vecExpr interface {
	// eval computes the expression over the batch's rows listed in sel
	// (always non-nil) and returns the result vector, valid at exactly
	// those positions. The returned vector is owned by the scratch (or
	// aliases a batch column) and is valid until the next fill.
	eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec
}

// vecCompute is one computed projection column: evaluate expr, publish
// the result as batch column dst.
type vecCompute struct {
	expr vecExpr
	dst  int
}

// resetComputed prepares a scratch vector for n computed values of type
// t, routing strings to the materialized-string layout (computed strings
// have no dictionary).
func resetComputed(v *types.Vec, t types.Type, n int) {
	if t == types.TString {
		v.ResetStrings(n)
	} else {
		v.Reset(t, n)
	}
}

// copyVecVal copies row i from src to dst. dst and src hold the same
// type wherever src is non-NULL (the CASE compiler enforces arm-type
// agreement), so only dst's layout is consulted.
func copyVecVal(dst, src *types.Vec, i int) {
	if src.NullAt(i) {
		dst.SetNull(i)
		return
	}
	switch dst.Typ {
	case types.TString:
		dst.Strs[i] = src.StrAt(i)
	case types.TFloat:
		dst.F64[i] = src.F64[i]
	case types.TDecimal:
		dst.I64[i], dst.Scale[i] = src.I64[i], src.Scale[i]
	default:
		dst.I64[i] = src.I64[i]
	}
}

// setVecValue scatters a boxed value into row i of a computed vector.
func setVecValue(dst *types.Vec, i int, val types.Value) {
	if val.IsNull() {
		dst.SetNull(i)
		return
	}
	switch dst.Typ {
	case types.TString:
		dst.Strs[i] = val.Str()
	case types.TFloat:
		dst.F64[i] = val.Float()
	case types.TDecimal:
		d := val.Decimal()
		dst.I64[i], dst.Scale[i] = d.Coef, d.Scale
	default:
		dst.I64[i] = val.Int()
	}
}

// decAt reads row i as a decimal, promoting ints exactly like
// Value.Decimal (scale 0).
func decAt(v *types.Vec, i int) decimal.Decimal {
	if v.Typ == types.TDecimal {
		return decimal.Decimal{Coef: v.I64[i], Scale: v.Scale[i]}
	}
	return decimal.Decimal{Coef: v.I64[i]}
}

// floatAt reads row i as a float64, replicating Value.Float's
// conversions (ints, dates, and bools widen; decimals round).
func floatAt(v *types.Vec, i int) float64 {
	switch v.Typ {
	case types.TFloat:
		return v.F64[i]
	case types.TDecimal:
		return (decimal.Decimal{Coef: v.I64[i], Scale: v.Scale[i]}).Float64()
	}
	return float64(v.I64[i])
}

// --- leaf kernels -------------------------------------------------------

// veCol returns a batch column as-is.
type veCol struct{ col int }

func (e *veCol) eval(b *Batch, _ []int32, _ *vecScratch) *types.Vec { return &b.Cols[e.col] }

// veConst broadcasts a non-NULL literal to the selected rows.
type veConst struct {
	val  types.Value
	slot int
}

func (e *veConst) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	out := &sc.exprVecs[e.slot]
	resetComputed(out, e.val.Typ, b.N)
	for _, i := range sel {
		setVecValue(out, int(i), e.val)
	}
	return out
}

// veNullConst is an all-NULL vector of a fixed type — a NULL literal, or
// an operator whose result is statically NULL (e.g. arithmetic with a
// NULL operand), matching the row path's typed-NULL result.
type veNullConst struct {
	typ  types.Type
	slot int
}

func (e *veNullConst) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	out := &sc.exprVecs[e.slot]
	resetComputed(out, e.typ, b.N)
	for _, i := range sel {
		out.SetNull(int(i))
	}
	return out
}

// --- arithmetic ---------------------------------------------------------

// Arithmetic kernel kinds, one per branch of Arith's promotion ladder.
const (
	aI64 uint8 = iota // int + int → int
	aF64              // either float → float
	aDec              // either decimal (no float) → decimal
)

type veArith struct {
	op   byte // '+', '-', '*'
	kind uint8
	l, r vecExpr
	typ  types.Type
	slot int
}

func (e *veArith) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	lv := e.l.eval(b, sel, sc)
	rv := e.r.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	resetComputed(out, e.typ, b.N)
	ln, rn := len(lv.Nulls) > 0, len(rv.Nulls) > 0
	for _, si := range sel {
		i := int(si)
		if (ln && lv.NullAt(i)) || (rn && rv.NullAt(i)) {
			out.SetNull(i)
			continue
		}
		switch e.kind {
		case aI64:
			x, y := lv.I64[i], rv.I64[i]
			switch e.op {
			case '+':
				out.I64[i] = x + y
			case '-':
				out.I64[i] = x - y
			default:
				out.I64[i] = x * y
			}
		case aF64:
			x, y := floatAt(lv, i), floatAt(rv, i)
			switch e.op {
			case '+':
				out.F64[i] = x + y
			case '-':
				out.F64[i] = x - y
			default:
				out.F64[i] = x * y
			}
		default:
			x, y := decAt(lv, i), decAt(rv, i)
			var d decimal.Decimal
			switch e.op {
			case '+':
				d = x.Add(y)
			case '-':
				d = x.Sub(y)
			default:
				d = x.Mul(y)
			}
			out.I64[i], out.Scale[i] = d.Coef, d.Scale
		}
	}
	return out
}

// veNeg is unary minus.
type veNeg struct {
	e    vecExpr
	typ  types.Type
	slot int
}

func (e *veNeg) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	v := e.e.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	resetComputed(out, e.typ, b.N)
	hn := len(v.Nulls) > 0
	for _, si := range sel {
		i := int(si)
		if hn && v.NullAt(i) {
			out.SetNull(i)
			continue
		}
		switch e.typ {
		case types.TFloat:
			out.F64[i] = -v.F64[i]
		case types.TDecimal:
			out.I64[i], out.Scale[i] = -v.I64[i], v.Scale[i]
		default:
			out.I64[i] = -v.I64[i]
		}
	}
	return out
}

// --- comparisons --------------------------------------------------------

// Comparison kernel kinds, one per branch of types.Compare's ladder.
const (
	ckI64 uint8 = iota // same-type int/date, or bool/bool
	ckF64              // mixed numeric → float64
	ckDec              // decimal vs decimal
	ckStr              // string vs string
)

type veCmp struct {
	kind uint8
	want [3]bool // keep-mask over comparison sign (-1, 0, +1)
	l, r vecExpr
	slot int
}

func (e *veCmp) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	lv := e.l.eval(b, sel, sc)
	rv := e.r.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	out.Reset(types.TBool, b.N)
	ln, rn := len(lv.Nulls) > 0, len(rv.Nulls) > 0
	for _, si := range sel {
		i := int(si)
		if (ln && lv.NullAt(i)) || (rn && rv.NullAt(i)) {
			out.SetNull(i)
			continue
		}
		var s int8
		switch e.kind {
		case ckI64:
			x, y := lv.I64[i], rv.I64[i]
			switch {
			case x < y:
				s = 0
			case x > y:
				s = 2
			default:
				s = 1
			}
		case ckDec:
			if lv.Scale[i] == rv.Scale[i] {
				x, y := lv.I64[i], rv.I64[i]
				switch {
				case x < y:
					s = 0
				case x > y:
					s = 2
				default:
					s = 1
				}
			} else {
				s = signIdx(decAt(lv, i).Cmp(decAt(rv, i)))
			}
		case ckStr:
			s = signIdx(strings.Compare(lv.StrAt(i), rv.StrAt(i)))
		default:
			x, y := floatAt(lv, i), floatAt(rv, i)
			switch {
			case x < y:
				s = 0
			case x > y:
				s = 2
			default:
				s = 1
			}
		}
		if e.want[s] {
			out.I64[i] = 1
		} else {
			out.I64[i] = 0
		}
	}
	return out
}

// --- boolean connectives ------------------------------------------------

// veBool is eager three-valued AND/OR. Eager evaluation of both sides is
// indistinguishable from the row path's short-circuit because admitted
// operands are total.
type veBool struct {
	and  bool
	l, r vecExpr
	slot int
}

func (e *veBool) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	lv := e.l.eval(b, sel, sc)
	rv := e.r.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	out.Reset(types.TBool, b.N)
	ln, rn := len(lv.Nulls) > 0, len(rv.Nulls) > 0
	for _, si := range sel {
		i := int(si)
		lnull := ln && lv.NullAt(i)
		rnull := rn && rv.NullAt(i)
		if e.and {
			// FALSE dominates NULL: x AND y is FALSE whenever either
			// side is non-NULL FALSE.
			if (!lnull && lv.I64[i] == 0) || (!rnull && rv.I64[i] == 0) {
				out.I64[i] = 0
				continue
			}
			if lnull || rnull {
				out.SetNull(i)
				continue
			}
			out.I64[i] = 1
		} else {
			if (!lnull && lv.I64[i] != 0) || (!rnull && rv.I64[i] != 0) {
				out.I64[i] = 1
				continue
			}
			if lnull || rnull {
				out.SetNull(i)
				continue
			}
			out.I64[i] = 0
		}
	}
	return out
}

type veNot struct {
	e    vecExpr
	slot int
}

func (e *veNot) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	v := e.e.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	out.Reset(types.TBool, b.N)
	hn := len(v.Nulls) > 0
	for _, si := range sel {
		i := int(si)
		if hn && v.NullAt(i) {
			out.SetNull(i)
			continue
		}
		if v.I64[i] == 0 {
			out.I64[i] = 1
		} else {
			out.I64[i] = 0
		}
	}
	return out
}

// --- predicates ---------------------------------------------------------

type veIsNull struct {
	e    vecExpr
	not  bool
	slot int
}

func (e *veIsNull) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	v := e.e.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	out.Reset(types.TBool, b.N)
	for _, si := range sel {
		i := int(si)
		if v.NullAt(i) != e.not {
			out.I64[i] = 1
		} else {
			out.I64[i] = 0
		}
	}
	return out
}

type veIn struct {
	e           vecExpr
	list        []types.Value // non-NULL constant elements
	sawNullElem bool
	not         bool
	slot        int
}

func (e *veIn) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	v := e.e.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	out.Reset(types.TBool, b.N)
	for _, si := range sel {
		i := int(si)
		val := v.Value(i)
		if val.IsNull() {
			out.SetNull(i)
			continue
		}
		matched := false
		for _, x := range e.list {
			if types.Equal(val, x) {
				matched = true
				break
			}
		}
		switch {
		case matched:
			out.I64[i] = b2i(!e.not)
		case e.sawNullElem:
			out.SetNull(i)
		default:
			out.I64[i] = b2i(e.not)
		}
	}
	return out
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// --- strings ------------------------------------------------------------

type veConcat struct {
	l, r vecExpr
	slot int
}

// vecValueString renders row i exactly like Value.String (raw payload
// for strings, formatted rendering otherwise), used by || and CONCAT.
func vecValueString(v *types.Vec, i int) string {
	if v.Typ == types.TString {
		return v.StrAt(i)
	}
	return v.Value(i).String()
}

func (e *veConcat) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	lv := e.l.eval(b, sel, sc)
	rv := e.r.eval(b, sel, sc)
	out := &sc.exprVecs[e.slot]
	out.ResetStrings(b.N)
	ln, rn := len(lv.Nulls) > 0, len(rv.Nulls) > 0
	for _, si := range sel {
		i := int(si)
		if (ln && lv.NullAt(i)) || (rn && rv.NullAt(i)) {
			out.SetNull(i)
			continue
		}
		out.Strs[i] = vecValueString(lv, i) + vecValueString(rv, i)
	}
	return out
}

// --- CASE ---------------------------------------------------------------

type veCaseArm struct{ cond, then vecExpr }

// veCase partitions the selection arm by arm: rows whose condition is
// non-NULL TRUE take the arm (its Then evaluated only on those rows,
// like the row path's lazy arm evaluation), the rest flow to the next
// arm and finally to ELSE (or NULL). Uses three scratch selection
// buffers: taken + rest ping-pong.
type veCase struct {
	arms    []veCaseArm
	els     vecExpr // nil → NULL
	typ     types.Type
	slot    int
	bufBase int
}

func (e *veCase) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	out := &sc.exprVecs[e.slot]
	resetComputed(out, e.typ, b.N)
	rest := sel
	pp := 0
	for _, a := range e.arms {
		if len(rest) == 0 {
			break
		}
		cv := a.cond.eval(b, rest, sc)
		cn := len(cv.Nulls) > 0
		taken := sc.selBufs[e.bufBase][:0]
		next := sc.selBufs[e.bufBase+1+pp][:0]
		for _, i := range rest {
			if (!cn || !cv.NullAt(int(i))) && cv.I64[i] != 0 {
				taken = append(taken, i)
			} else {
				next = append(next, i)
			}
		}
		sc.selBufs[e.bufBase] = taken
		sc.selBufs[e.bufBase+1+pp] = next
		if len(taken) > 0 {
			tv := a.then.eval(b, taken, sc)
			for _, i := range taken {
				copyVecVal(out, tv, int(i))
			}
		}
		rest = next
		pp = 1 - pp
	}
	if len(rest) > 0 {
		if e.els != nil {
			ev := e.els.eval(b, rest, sc)
			for _, i := range rest {
				copyVecVal(out, ev, int(i))
			}
		} else {
			for _, i := range rest {
				out.SetNull(int(i))
			}
		}
	}
	return out
}

// --- scalar functions ---------------------------------------------------

// veFunc evaluates its argument vectors, then boxes one row at a time
// through callScalar — the row path's own implementation — so every
// per-function NULL and clamping rule is shared, not replicated.
// Admission (plan.VecExprType) guarantees callScalar's error paths are
// unreachable for the compiled argument types.
type veFunc struct {
	name string
	args []vecExpr
	typ  types.Type
	slot int
}

func (e *veFunc) eval(b *Batch, sel []int32, sc *vecScratch) *types.Vec {
	avs := make([]*types.Vec, len(e.args))
	for k, a := range e.args {
		avs[k] = a.eval(b, sel, sc)
	}
	out := &sc.exprVecs[e.slot]
	resetComputed(out, e.typ, b.N)
	vals := make([]types.Value, len(e.args))
	for _, si := range sel {
		i := int(si)
		for k := range avs {
			vals[k] = avs[k].Value(i)
		}
		v, err := callScalar(e.name, e.typ, vals)
		if err != nil {
			// Statically unreachable: admission only compiles total
			// calls. The engine's panic isolation reports it as a query
			// error if an admission bug ever lets one through.
			panic(fmt.Sprintf("exec: vectorized %s raised %v", e.name, err))
		}
		setVecValue(out, i, v)
	}
	return out
}

// --- compiler -----------------------------------------------------------

// newSlot allocates a scratch output vector for one kernel.
func (f *vecFrag) newSlot() int {
	s := f.spec.nSlots
	f.spec.nSlots++
	return s
}

// compileVecExpr compiles an expression admitted by plan.VecExprType
// into a kernel tree, or declines. Declines mean the enclosing operator
// falls back to the row path, which is always safe.
func (f *vecFrag) compileVecExpr(e plan.Expr) (vecExpr, bool) {
	switch e := e.(type) {
	case *plan.ColRef:
		bc, ok := f.batchCol(e.ID)
		if !ok {
			return nil, false
		}
		return &veCol{col: bc}, true

	case *plan.Const:
		if e.Val.IsNull() {
			return &veNullConst{typ: e.Val.Typ, slot: f.newSlot()}, true
		}
		return &veConst{val: e.Val, slot: f.newSlot()}, true

	case *plan.Bin:
		return f.compileVecBin(e)

	case *plan.Un:
		t, ok := plan.VecExprType(e.E)
		if !ok {
			return nil, false
		}
		if e.Op == "NOT" {
			if t != types.TBool && t != types.TNull {
				return nil, false
			}
			inner, ok := f.compileVecExpr(e.E)
			if !ok {
				return nil, false
			}
			return &veNot{e: inner, slot: f.newSlot()}, true
		}
		if t == types.TNull {
			// -NULL is NULL of the operand's (null) type, as the row
			// path's NewNull(v.Typ).
			return &veNullConst{typ: types.TNull, slot: f.newSlot()}, true
		}
		switch t {
		case types.TInt, types.TFloat, types.TDecimal:
		default:
			return nil, false
		}
		inner, ok := f.compileVecExpr(e.E)
		if !ok {
			return nil, false
		}
		return &veNeg{e: inner, typ: t, slot: f.newSlot()}, true

	case *plan.IsNullExpr:
		inner, ok := f.compileVecExpr(e.E)
		if !ok {
			return nil, false
		}
		return &veIsNull{e: inner, not: e.Not, slot: f.newSlot()}, true

	case *plan.InListExpr:
		inner, ok := f.compileVecExpr(e.E)
		if !ok {
			return nil, false
		}
		in := &veIn{e: inner, not: e.Not, slot: f.newSlot()}
		for _, x := range e.List {
			k, ok := x.(*plan.Const)
			if !ok {
				return nil, false
			}
			if k.Val.IsNull() {
				in.sawNullElem = true
				continue
			}
			in.list = append(in.list, k.Val)
		}
		return in, true

	case *plan.Case:
		c := &veCase{typ: e.Typ, slot: f.newSlot(), bufBase: f.spec.nBufs}
		f.spec.nBufs += 3
		for _, w := range e.Whens {
			cond, ok := f.compileVecExpr(w.Cond)
			if !ok {
				return nil, false
			}
			then, ok := f.compileVecExpr(w.Then)
			if !ok {
				return nil, false
			}
			c.arms = append(c.arms, veCaseArm{cond: cond, then: then})
		}
		if e.Else != nil {
			els, ok := f.compileVecExpr(e.Else)
			if !ok {
				return nil, false
			}
			c.els = els
		}
		return c, true

	case *plan.Func:
		if _, ok := plan.VecExprType(e); !ok {
			return nil, false
		}
		fn := &veFunc{name: e.Name, typ: e.Typ, slot: f.newSlot()}
		for _, a := range e.Args {
			av, ok := f.compileVecExpr(a)
			if !ok {
				return nil, false
			}
			fn.args = append(fn.args, av)
		}
		return fn, true
	}
	return nil, false
}

func (f *vecFrag) compileVecBin(e *plan.Bin) (vecExpr, bool) {
	lt, lok := plan.VecExprType(e.L)
	rt, rok := plan.VecExprType(e.R)
	if !lok || !rok {
		return nil, false
	}
	switch e.Op {
	case "+", "-", "*":
		if lt == types.TNull || rt == types.TNull {
			return &veNullConst{typ: e.Typ, slot: f.newSlot()}, true
		}
		rtype, ok := plan.VecExprType(e)
		if !ok {
			return nil, false
		}
		l, ok := f.compileVecExpr(e.L)
		if !ok {
			return nil, false
		}
		r, ok := f.compileVecExpr(e.R)
		if !ok {
			return nil, false
		}
		a := &veArith{op: e.Op[0], l: l, r: r, typ: rtype, slot: f.newSlot()}
		switch rtype {
		case types.TInt:
			a.kind = aI64
		case types.TFloat:
			a.kind = aF64
		case types.TDecimal:
			a.kind = aDec
		default:
			return nil, false
		}
		return a, true

	case "=", "<>", "<", "<=", ">", ">=":
		if lt == types.TNull || rt == types.TNull {
			return &veNullConst{typ: types.TBool, slot: f.newSlot()}, true
		}
		want, ok := wantFor(e.Op)
		if !ok {
			return nil, false
		}
		l, ok := f.compileVecExpr(e.L)
		if !ok {
			return nil, false
		}
		r, ok := f.compileVecExpr(e.R)
		if !ok {
			return nil, false
		}
		c := &veCmp{want: want, l: l, r: r, slot: f.newSlot()}
		switch {
		case lt == types.TString && rt == types.TString:
			c.kind = ckStr
		case lt == types.TBool && rt == types.TBool:
			c.kind = ckI64
		case lt == rt && (lt == types.TInt || lt == types.TDate):
			c.kind = ckI64
		case lt == types.TDecimal && rt == types.TDecimal:
			c.kind = ckDec
		case types.Numeric(lt) && types.Numeric(rt):
			c.kind = ckF64
		default:
			return nil, false
		}
		return c, true

	case "AND", "OR":
		l, ok := f.compileVecExpr(e.L)
		if !ok {
			return nil, false
		}
		r, ok := f.compileVecExpr(e.R)
		if !ok {
			return nil, false
		}
		return &veBool{and: e.Op == "AND", l: l, r: r, slot: f.newSlot()}, true

	case "||":
		if lt == types.TNull || rt == types.TNull {
			return &veNullConst{typ: types.TString, slot: f.newSlot()}, true
		}
		l, ok := f.compileVecExpr(e.L)
		if !ok {
			return nil, false
		}
		r, ok := f.compileVecExpr(e.R)
		if !ok {
			return nil, false
		}
		return &veConcat{l: l, r: r, slot: f.newSlot()}, true
	}
	return nil, false
}
