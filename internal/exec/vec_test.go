package exec

import (
	"fmt"
	"testing"

	"vdm/internal/plan"
	"vdm/internal/storage"
	"vdm/internal/types"
)

// runVecAndRow builds the same plan twice — batch executor on, then off —
// and requires identical ordered rows.
func runVecAndRow(t *testing.T, ctx *plan.Context, db *storage.DB, n plan.Node, batchSize int) []types.Row {
	t.Helper()
	plan.MarkVectorizable(n)

	vb := NewBuilder(ctx, db, db.CurrentTS())
	vb.SetVectorize(batchSize)
	vecRows, err := vb.Run(n)
	if err != nil {
		t.Fatalf("vectorized run: %v", err)
	}

	rb := NewBuilder(ctx, db, db.CurrentTS())
	rowRows, err := rb.Run(n)
	if err != nil {
		t.Fatalf("row run: %v", err)
	}

	if len(vecRows) != len(rowRows) {
		t.Fatalf("vec %d rows, row %d rows", len(vecRows), len(rowRows))
	}
	for i := range rowRows {
		if len(vecRows[i]) != len(rowRows[i]) {
			t.Fatalf("row %d: width %d vs %d", i, len(vecRows[i]), len(rowRows[i]))
		}
		for c := range rowRows[i] {
			v, w := vecRows[i][c], rowRows[i][c]
			if v.IsNull() != w.IsNull() || (!v.IsNull() && !types.Equal(v, w)) {
				t.Fatalf("row %d col %d: vec %v, row %v", i, c, v, w)
			}
		}
	}
	return vecRows
}

// TestVecPipelineMatchesRowPath runs scan/filter shapes against both
// executors at several batch sizes, including ones that don't divide the
// row count.
func TestVecPipelineMatchesRowPath(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)

	filter := &plan.Filter{Input: ls, Cond: &plan.Bin{Op: ">",
		L:   &plan.ColRef{ID: ls.Cols[0], Typ: types.TInt},
		R:   &plan.Const{Val: types.NewInt(1)},
		Typ: types.TBool}}

	for _, bs := range []int{1, 2, 3, 1024} {
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			rows := runVecAndRow(t, ctx, db, filter, bs)
			if len(rows) != 3 {
				t.Fatalf("filtered rows = %d, want 3", len(rows))
			}
		})
	}
}

// TestVecStringFilterUsesDictCodes checks dictionary-column equality
// through the batch path on a table whose delta re-encodes codes.
func TestVecStringFilterUsesDictCodes(t *testing.T) {
	db, ctx, ls, _ := buildEnv(t)
	// Push extra rows into the delta so the same strings carry rebased
	// codes (buildEnv's rows may sit in the delta too; merging first
	// forces a main/delta split).
	tbl, _ := db.Table("l")
	if err := tbl.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("l", []types.Row{
		{types.NewInt(5), types.NewInt(10), types.NewString("a")},
		{types.NewInt(6), types.NewInt(20), types.NewString("zz")},
	}); err != nil {
		t.Fatal(err)
	}

	eq := &plan.Filter{Input: ls, Cond: &plan.Bin{Op: "=",
		L:   &plan.ColRef{ID: ls.Cols[2], Typ: types.TString},
		R:   &plan.Const{Val: types.NewString("a")},
		Typ: types.TBool}}
	rows := runVecAndRow(t, ctx, db, eq, 2)
	if len(rows) != 2 { // id 1 (main) and id 5 (delta)
		t.Fatalf("string filter rows = %d, want 2", len(rows))
	}
}

// TestVecJoinMatchesRowPath covers inner and left-outer joins, both
// build orientations, through the batch executor.
func TestVecJoinMatchesRowPath(t *testing.T) {
	db, ctx, ls, rs := buildEnv(t)
	cond := &plan.Bin{Op: "=",
		L:   &plan.ColRef{ID: ls.Cols[1], Typ: types.TInt},
		R:   &plan.ColRef{ID: rs.Cols[0], Typ: types.TInt},
		Typ: types.TBool}

	for _, buildLeft := range []bool{false, true} {
		inner := &plan.Join{Kind: plan.InnerJoin, Left: ls, Right: rs, Cond: cond, BuildLeft: buildLeft}
		if rows := runVecAndRow(t, ctx, db, inner, 2); len(rows) != 2 {
			t.Fatalf("buildLeft=%v: inner rows = %d, want 2", buildLeft, len(rows))
		}
		outer := &plan.Join{Kind: plan.LeftOuterJoin, Left: ls, Right: rs, Cond: cond, BuildLeft: buildLeft}
		if rows := runVecAndRow(t, ctx, db, outer, 2); len(rows) != 4 {
			t.Fatalf("buildLeft=%v: outer rows = %d, want 4", buildLeft, len(rows))
		}
	}
}

// TestCodeMemoEpochs pins the per-batch memo contract: values from an
// earlier epoch are invisible, and the uint32 epoch wrap resets instead
// of colliding with stale entries.
func TestCodeMemoEpochs(t *testing.T) {
	var m codeMemo
	m.next(4)
	m.val[2] = 1
	m.epoch[2] = m.cur
	if m.epoch[2] != m.cur {
		t.Fatal("memo entry not current after write")
	}
	m.next(4)
	if m.epoch[2] == m.cur {
		t.Fatal("stale entry still current after next()")
	}
	// Force the wrap: cur overflows to 0 and must reset all epochs.
	m.cur = ^uint32(0)
	m.epoch[1] = m.cur // stale entry that would collide after wrap
	m.next(4)
	if m.cur != 1 {
		t.Fatalf("cur after wrap = %d, want 1", m.cur)
	}
	for i, e := range m.epoch {
		if e == m.cur {
			t.Fatalf("epoch[%d] collides with current after wrap", i)
		}
	}
}

// TestVecRowsIterLazyFill checks the adapter only fills batches as rows
// are pulled, so LIMIT-style early close does not scan the table.
func TestVecRowsIterLazyFill(t *testing.T) {
	db := storage.NewDB()
	ctx := plan.NewContext()
	tbl, err := db.CreateTable("big", types.Schema{{Name: "x", Type: types.TInt}})
	if err != nil {
		t.Fatal(err)
	}
	var rows []types.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i))})
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	scan := &plan.Scan{Info: &plan.TableInfo{Name: "big", Schema: tbl.Schema()}, Instance: ctx.NewInstance()}
	scan.Cols = append(scan.Cols, ctx.NewColumn("x", types.TInt))
	scan.Ords = append(scan.Ords, 0)
	plan.MarkVectorizable(scan)

	b := NewBuilder(ctx, db, db.CurrentTS())
	b.SetVectorize(10)
	it, err := b.Build(scan)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	row, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v ok=%v", err, ok)
	}
	if row[0].Int() != 0 {
		t.Fatalf("first row = %v", row)
	}
	vi, ok := it.(*vecRowsIter)
	if !ok {
		t.Fatalf("iterator is %T, want *vecRowsIter", it)
	}
	if vi.pos > 10 {
		t.Fatalf("adapter prefetched to pos %d after one row (batch 10)", vi.pos)
	}
}
