package exec

import (
	"fmt"
	"time"

	"vdm/internal/types"
)

// OpStats holds the runtime counters EXPLAIN ANALYZE reports for one
// plan operator. Times are inclusive: an operator's NextNs contains the
// time spent pulling from its children.
type OpStats struct {
	// Rows is the number of rows the operator produced.
	Rows int64
	// Nexts is the number of Next() calls (Rows + 1 for a fully drained
	// operator; fewer when a LIMIT above stopped early).
	Nexts int64
	// OpenNs is wall time spent in Open(), where blocking operators
	// (hash joins, group-by, sort) do their build work.
	OpenNs int64
	// NextNs is wall time spent across all Next() calls.
	NextNs int64
	// BuildRows / BuildBytes describe the materialized side of blocking
	// operators: hash-table rows for joins, groups for GROUP BY, buffered
	// rows for sort and cross join. Zero for streaming operators.
	BuildRows  int64
	BuildBytes int64
	// Workers / Morsels describe morsel-driven parallel scans: pool size
	// and morsels scheduled. Zero for serial operators.
	Workers int64
	Morsels int64
	// Partitions is the partition count of a parallel hash-join build.
	Partitions int64
	// MemBytes is the operator's governance-accounted memory: every
	// byte it charged against the query budget (hash tables, sort
	// buffers, top-k heaps, group tables, DISTINCT seen-sets). Zero for
	// streaming operators.
	MemBytes int64
	// Mode reports which executor ran the operator: "vector" for the
	// batch kernels, "row" for the classic iterators. Empty when the
	// distinction does not apply (e.g. Values).
	Mode string
	// Note is a free-form annotation (e.g. top-k fusion).
	Note string
}

// String renders the stats in the bracketed form EXPLAIN ANALYZE
// appends to each plan line.
func (s *OpStats) String() string {
	total := time.Duration(s.OpenNs + s.NextNs).Round(time.Microsecond)
	out := fmt.Sprintf("[rows=%d nexts=%d time=%v", s.Rows, s.Nexts, total)
	if s.BuildRows > 0 || s.BuildBytes > 0 {
		out += fmt.Sprintf(" build_rows=%d build_bytes=%d", s.BuildRows, s.BuildBytes)
	}
	if s.Workers > 0 {
		out += fmt.Sprintf(" workers=%d morsels=%d", s.Workers, s.Morsels)
	}
	if s.Partitions > 0 {
		out += fmt.Sprintf(" partitions=%d", s.Partitions)
	}
	if s.MemBytes > 0 {
		out += fmt.Sprintf(" mem_bytes=%d", s.MemBytes)
	}
	if s.Mode != "" {
		out += " mode=" + s.Mode
	}
	if s.Note != "" {
		out += " " + s.Note
	}
	return out + "]"
}

// buildSider is implemented by blocking iterators that materialize one
// input during Open(); statIter reads it once after Open returns, so the
// per-row build loop stays uninstrumented.
type buildSider interface {
	buildStats() (rows, bytes int64)
}

// rowSetBytes estimates the in-memory footprint of materialized rows:
// a fixed per-value overhead (the Value struct) plus string payloads.
func rowSetBytes(rows []types.Row) (int64, int64) {
	var n, bytes int64
	for _, r := range rows {
		n++
		bytes += rowBytes(r)
	}
	return n, bytes
}

func rowBytes(r types.Row) int64 {
	b := int64(len(r)) * 48
	for _, v := range r {
		if v.Typ == types.TString && !v.IsNull() {
			b += int64(len(v.Str()))
		}
	}
	return b
}

func (j *hashJoinIter) buildStats() (int64, int64) {
	if j.part != nil {
		var n, bytes int64
		for _, part := range j.part.parts {
			for _, rows := range part {
				rn, rb := rowSetBytes(rows)
				n += rn
				bytes += rb
			}
		}
		return n, bytes
	}
	if j.table != nil {
		var n, bytes int64
		for _, rows := range j.table {
			rn, rb := rowSetBytes(rows)
			n += rn
			bytes += rb
		}
		return n, bytes
	}
	return rowSetBytes(j.rightRows)
}

func (j *hashJoinIter) extraStats(st *OpStats) {
	if j.part != nil {
		st.Partitions = int64(len(j.part.parts))
	}
}

func (j *semiJoinIter) buildStats() (int64, int64) {
	if j.table != nil {
		var n, bytes int64
		for _, rows := range j.table {
			rn, rb := rowSetBytes(rows)
			n += rn
			bytes += rb
		}
		return n, bytes
	}
	return rowSetBytes(j.rightRows)
}

func (j *hashJoinBuildLeftIter) buildStats() (int64, int64) {
	return rowSetBytes(j.leftRows)
}

func (c *crossJoinIter) buildStats() (int64, int64) {
	return rowSetBytes(c.rightRows)
}

func (g *groupByIter) buildStats() (int64, int64) {
	return rowSetBytes(g.groups)
}

func (s *sortIter) buildStats() (int64, int64) {
	return rowSetBytes(s.rows)
}

// extraStatser is implemented by iterators that report parallelism
// details (worker count, morsels, partitions, fusion notes); statIter
// harvests them on Close, after the counters are final.
type extraStatser interface {
	extraStats(*OpStats)
}

// memAccounter is implemented by iterators carrying a governance memory
// account; statIter harvests the accounted bytes on Close (before the
// inner Close releases the account) into OpStats.MemBytes.
type memAccounter interface {
	memBytes() int64
}

func (j *hashJoinIter) memBytes() int64          { return j.acct.bytes() }
func (j *semiJoinIter) memBytes() int64          { return j.acct.bytes() }
func (j *hashJoinBuildLeftIter) memBytes() int64 { return j.acct.bytes() }
func (c *crossJoinIter) memBytes() int64         { return c.acct.bytes() }
func (g *groupByIter) memBytes() int64           { return g.acct.bytes() }
func (s *sortIter) memBytes() int64              { return s.acct.bytes() }
func (t *topKIter) memBytes() int64              { return t.acct.bytes() }
func (d *distinctIter) memBytes() int64          { return d.acct.bytes() }

// statIter wraps an iterator and records OpStats. It exists only when
// the builder is in analyze mode, so the normal execution path pays
// nothing for the instrumentation.
type statIter struct {
	inner Iterator
	stats *OpStats
}

func (s *statIter) Open() error {
	t0 := time.Now()
	err := s.inner.Open()
	s.stats.OpenNs += time.Since(t0).Nanoseconds()
	if err == nil {
		if bs, ok := s.inner.(buildSider); ok {
			s.stats.BuildRows, s.stats.BuildBytes = bs.buildStats()
		}
	}
	return err
}

func (s *statIter) Next() (types.Row, bool, error) {
	t0 := time.Now()
	row, ok, err := s.inner.Next()
	s.stats.NextNs += time.Since(t0).Nanoseconds()
	s.stats.Nexts++
	if ok {
		s.stats.Rows++
	}
	return row, ok, err
}

func (s *statIter) Close() {
	if es, ok := s.inner.(extraStatser); ok {
		es.extraStats(s.stats)
	}
	if ma, ok := s.inner.(memAccounter); ok {
		s.stats.MemBytes = ma.memBytes()
	}
	s.inner.Close()
}
