// Command vdmexplain prints the bound and optimized plans of a query
// under a chosen optimizer profile, together with the operator census —
// the tool used to inspect how each capability profile treats the
// paper's query patterns.
//
// Usage:
//
//	vdmexplain -schema tpch|s4 [-profile hana|postgres|x|y|z|none|nocasejoin] [-user NAME] 'select ...'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdm/internal/core"
	"vdm/internal/engine"
	"vdm/internal/s4"
	"vdm/internal/tpch"
)

func main() {
	schema := flag.String("schema", "tpch", "schema to load: tpch, s4, none")
	profile := flag.String("profile", "hana", "optimizer profile: hana, postgres, x, y, z, none, nocasejoin")
	user := flag.String("user", "", "session user (for DAC policies)")
	flag.Parse()
	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		fmt.Fprintln(os.Stderr, "usage: vdmexplain [-schema tpch|s4] [-profile NAME] 'select ...'")
		os.Exit(2)
	}

	e := engine.New()
	var err error
	switch *schema {
	case "tpch":
		err = tpch.Setup(e, tpch.TinyScale(), true)
	case "s4":
		err = s4.Setup(e, s4.TinySize())
	case "none":
	default:
		err = fmt.Errorf("unknown schema %q", *schema)
	}
	if err != nil {
		fatal(err)
	}
	profiles := map[string]core.Profile{
		"hana": core.ProfileHANA, "postgres": core.ProfilePostgres,
		"x": core.ProfileSystemX, "y": core.ProfileSystemY,
		"z": core.ProfileSystemZ, "none": core.ProfileNone,
		"nocasejoin": core.ProfileHANANoCaseJoin,
	}
	p, ok := profiles[strings.ToLower(*profile)]
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	e.SetProfile(p)

	raw, err := e.ExplainRaw(*user, query)
	if err != nil {
		fatal(err)
	}
	rawStats, _ := e.PlanStats(*user, query, false)
	opt, err := e.Explain(*user, query)
	if err != nil {
		fatal(err)
	}
	optStats, _ := e.PlanStats(*user, query, true)

	fmt.Printf("=== bound plan (%s)\n%s    %s\n\n", rawStats, raw, "")
	fmt.Printf("=== optimized plan, profile %s (%s)\n%s\n", p.Name, optStats, opt)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vdmexplain:", err)
	os.Exit(1)
}
