// Command vdmexplain prints the bound and optimized plans of a query
// under one or more optimizer profiles, together with the operator
// census — the tool used to inspect how each capability profile treats
// the paper's query patterns.
//
// Usage:
//
//	vdmexplain [-schema tpch|s4|none] [-profile NAMES] [-trace] [-analyze] [-user NAME] 'select ...'
//
// Flags:
//
//	-profile   comma-separated list of profiles to compare, from
//	           hana, postgres, x, y, z, none, nocasejoin. With more
//	           than one profile the optimized plan (and trace) is
//	           printed per profile, so rule differences across systems
//	           can be diffed directly.
//	-trace     print the optimizer rule trace for each profile: every
//	           rewrite that fired (with the matched operator and the
//	           number of joins removed) and every rule the profile
//	           skipped for lack of the capability.
//	-analyze   execute the query under each profile and annotate the
//	           plan with per-operator actual rows and timings
//	           (EXPLAIN ANALYZE). With costing on, each operator also
//	           shows its row estimate and q-error.
//	-nocost    disable the statistics-driven pass (hash-join build-side
//	           selection, inner-join reordering, est_rows annotations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vdm/internal/core"
	"vdm/internal/engine"
	"vdm/internal/s4"
	"vdm/internal/tpch"
)

func main() {
	schema := flag.String("schema", "tpch", "schema to load: tpch, s4 (incl. the Figure-14 document pair), none")
	profile := flag.String("profile", "hana", "comma-separated optimizer profiles: hana, postgres, x, y, z, none, nocasejoin")
	trace := flag.Bool("trace", false, "print the optimizer rule trace (fired and skipped rules) per profile")
	analyze := flag.Bool("analyze", false, "execute the query and annotate the plan with actual rows and timings")
	user := flag.String("user", "", "session user (for DAC policies)")
	nocost := flag.Bool("nocost", false, "disable cost-based planning (no build-side selection, join reordering, or est_rows)")
	timeout := flag.Duration("timeout", 0, "statement timeout for -analyze runs (0 = none)")
	memlimit := flag.Int64("memlimit", 0, "per-query memory budget in bytes for -analyze runs (0 = unlimited)")
	walDir := flag.String("wal", "", "open a durable database (WAL + checkpoints) from this directory and explain against its data")
	flag.Parse()
	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		fmt.Fprintln(os.Stderr, "usage: vdmexplain [-schema tpch|s4] [-profile NAME[,NAME...]] [-trace] [-analyze] [-wal DIR] 'select ...'")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var e *engine.Engine
	if *walDir != "" {
		var oerr error
		e, oerr = engine.Open(engine.Options{WALDir: *walDir})
		if oerr != nil {
			fatal(oerr)
		}
		defer e.Close()
		if info := e.Recovery(); info != nil {
			fmt.Fprintf(os.Stderr, "recovered %s: clock %d (%d records, torn tail: %v) in %s\n",
				*walDir, info.LastTS, info.Records, info.TornTail, info.Duration)
		}
		if *schema != "none" && len(e.DB().TableNames()) > 0 {
			// A recovered database brings its own tables; don't overlay
			// the generated schema on top of it.
			*schema = "none"
		}
	} else {
		e = engine.New()
	}
	if *nocost {
		e.EnableCosting(false)
	}
	if *timeout > 0 || *memlimit > 0 {
		opts := e.Options()
		opts.StatementTimeout = *timeout
		opts.MemoryBudget = *memlimit
		e.SetOptions(opts)
	}
	var err error
	switch *schema {
	case "tpch":
		err = tpch.Setup(e, tpch.TinyScale(), true)
	case "s4":
		err = s4.Setup(e, s4.TinySize())
		if err == nil {
			err = s4.SetupFig14(e, s4.Fig14Tiny())
		}
	case "none":
	default:
		err = fmt.Errorf("unknown schema %q", *schema)
	}
	if err != nil {
		fatal(err)
	}
	byName := map[string]core.Profile{
		"hana": core.ProfileHANA, "postgres": core.ProfilePostgres,
		"x": core.ProfileSystemX, "y": core.ProfileSystemY,
		"z": core.ProfileSystemZ, "none": core.ProfileNone,
		"nocasejoin": core.ProfileHANANoCaseJoin,
	}
	var profiles []core.Profile
	for _, name := range strings.Split(*profile, ",") {
		p, ok := byName[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			fatal(fmt.Errorf("unknown profile %q", name))
		}
		profiles = append(profiles, p)
	}

	raw, err := e.ExplainRaw(*user, query)
	if err != nil {
		fatal(err)
	}
	rawStats, _ := e.PlanStats(*user, query, false)
	fmt.Printf("=== bound plan (%s)\n%s\n", rawStats, raw)

	for _, p := range profiles {
		e.SetProfile(p)
		opt, err := e.Explain(*user, query)
		if err != nil {
			fatal(err)
		}
		optStats, _ := e.PlanStats(*user, query, true)
		fmt.Printf("=== optimized plan, profile %s (%s)\n%s", p.Name, optStats, opt)
		if *analyze {
			annotated, err := e.ExplainAnalyze(*user, query)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("--- analyze, profile %s\n%s", p.Name, annotated)
		}
		if *trace {
			tr, err := e.TraceQuery(*user, query)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("--- trace, profile %s\n%s", p.Name, tr)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vdmexplain:", err)
	os.Exit(1)
}
