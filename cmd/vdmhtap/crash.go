package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vdm/internal/htapbench"
)

// Crash-recovery mode: -crash-recover N runs N kill cycles against a
// durable fixture. Each cycle re-executes this binary with the hidden
// -crash-child flag; the child opens (or recovers) the fixture from the
// WAL directory and streams writer commits, appending each acknowledged
// commit's timestamp to a progress file. The parent waits for the first
// line, SIGKILLs the child at a random moment, reopens the directory
// in-process, and re-verifies the harness oracles (conservation, page
// sanity, primary-key uniqueness) plus the durability contract: the
// recovered commit clock must be at or past every acknowledged
// timestamp, and must never move backwards across cycles.

// runCrashChild is the victim process body.
func runCrashChild(dir string, cycle int, progressPath string, seed int64) error {
	cf, err := htapbench.OpenCrashFixture(dir, seed)
	if err != nil {
		return err
	}
	defer cf.Close()
	progress, err := os.OpenFile(progressPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// Run until killed; a clean return means the parent never fired.
	return cf.RunCrashOps(cycle, 1<<30, progress)
}

// crashMaxDurableTS returns the largest commit timestamp on a complete
// progress-file line; a trailing partial line is an unacknowledged
// commit and is ignored.
func crashMaxDurableTS(path string) (uint64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var max uint64
	for {
		i := bytes.IndexByte(buf, '\n')
		if i < 0 {
			return max, nil
		}
		line := strings.TrimSpace(string(buf[:i]))
		buf = buf[i+1:]
		if line == "" {
			continue
		}
		ts, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad progress line %q: %v", line, err)
		}
		if ts > max {
			max = ts
		}
	}
}

func runCrashRecover(dir string, cycles int, seed int64) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "vdmhtap-crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	scratch, err := os.MkdirTemp("", "vdmhtap-progress-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	self, err := os.Executable()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	var lastClock uint64
	violations := 0
	for c := 0; c < cycles; c++ {
		progressPath := filepath.Join(scratch, fmt.Sprintf("progress-%d", c))
		cmd := exec.Command(self,
			"-crash-child",
			"-wal", dir,
			"-crash-cycle", strconv.Itoa(c),
			"-crash-progress", progressPath,
			"-seed", strconv.FormatInt(seed, 10),
		)
		var childOut bytes.Buffer
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("cycle %d: start child: %v", c, err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if st, serr := os.Stat(progressPath); serr == nil && st.Size() > 0 {
				break
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				return fmt.Errorf("cycle %d: child never became ready\n%s", c, childOut.String())
			}
			time.Sleep(time.Millisecond)
		}
		killDelay := time.Duration(1+rng.Intn(25)) * time.Millisecond
		time.Sleep(killDelay)
		if err := cmd.Process.Kill(); err != nil {
			return fmt.Errorf("cycle %d: kill child: %v", c, err)
		}
		cmd.Wait()

		start := time.Now()
		cf, err := htapbench.OpenCrashFixture(dir, seed)
		if err != nil {
			return fmt.Errorf("cycle %d: reopen after kill: %v\n%s", c, err, childOut.String())
		}
		clock := cf.Clock()
		durable, derr := crashMaxDurableTS(progressPath)
		if derr != nil {
			cf.Close()
			return fmt.Errorf("cycle %d: %v", c, derr)
		}
		var bad []string
		if clock < lastClock {
			bad = append(bad, fmt.Sprintf("clock moved backwards: %d -> %d", lastClock, clock))
		}
		if clock < durable {
			bad = append(bad, fmt.Sprintf("lost durable commits: acknowledged ts %d, recovered clock %d", durable, clock))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		bad = append(bad, cf.VerifyRecovered(ctx)...)
		cancel()
		info := cf.Info
		fmt.Fprintf(os.Stderr,
			"vdmhtap: cycle %2d: killed after %5s, recovered clock %d (checkpoint ts %d, %d records, torn tail %v) in %s, %d violation(s)\n",
			c, killDelay, clock, info.CheckpointTS, info.Records, info.TornTail,
			time.Since(start).Round(time.Millisecond), len(bad))
		for _, v := range bad {
			fmt.Fprintln(os.Stderr, "  violation:", v)
		}
		violations += len(bad)
		lastClock = clock
		if err := cf.Close(); err != nil {
			return fmt.Errorf("cycle %d: close: %v", c, err)
		}
	}
	if violations > 0 {
		return fmt.Errorf("crash-recover: %d violation(s) across %d cycles", violations, cycles)
	}
	fmt.Fprintf(os.Stderr, "vdmhtap: crash-recover: %d kill cycles clean, final clock %d\n", cycles, lastClock)
	return nil
}
