// Command vdmhtap runs the CH-benCHmark-style mixed-workload harness:
// concurrent OLTP writer sessions against analytical reader sessions on
// one Active/Draft document fixture, with online invariant checking
// (snapshot consistency, monotonic freshness, conservation, page
// sanity). It writes BENCH_HTAP.json and exits non-zero if any
// invariant was violated.
//
// Usage:
//
//	vdmhtap -writers 8 -readers 8 -duration 10s -seed 1 -scale 100000
//	vdmhtap -det -ops 200 -schedule run.sched   # deterministic, replayable
//	vdmhtap -replay run.sched                   # replay a recorded schedule
//	vdmhtap -wal state/ -duration 10s           # durable run (WAL + checkpoints)
//	vdmhtap -wal state/ -replicas 2             # WAL-shipped read replicas + the
//	                                            # replica-consistency reader class
//	vdmhtap -crash-recover 25                   # crash-injection: SIGKILL mid-commit,
//	                                            # recover, re-verify the oracles
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vdm/internal/htapbench"
	"vdm/internal/wal"
)

func main() {
	var (
		writers  = flag.Int("writers", 8, "OLTP writer sessions")
		readers  = flag.Int("readers", 8, "analytical reader sessions")
		duration = flag.Duration("duration", 10*time.Second, "run length (concurrent mode)")
		seed     = flag.Int64("seed", 1, "workload seed")
		scale    = flag.Int("scale", 100_000, "preloaded active documents")
		mixSpec  = flag.String("mix", "default", "operation mix: preset (default, write-heavy, read-heavy) or key=weight list")
		ops      = flag.Int("ops", 0, "operations per session (0 = duration-bounded; required with -det)")
		det      = flag.Bool("det", false, "deterministic single-goroutine mode (byte-identical logs per seed)")
		out      = flag.String("out", "BENCH_HTAP.json", "report output path")
		schedule = flag.String("schedule", "", "write the schedule log to this path")
		replay   = flag.String("replay", "", "replay a recorded schedule log instead of generating a workload")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-statement timeout (0 disables)")
		memlimit = flag.Int64("memlimit", 256<<20, "per-query memory budget in bytes (0 disables)")
		maxq     = flag.Int("maxq", 0, "max concurrent queries admitted (0 = unlimited)")

		walDir  = flag.String("wal", "", "durability directory: write-ahead log + checkpoints (empty = memory only; must be fresh for workload runs)")
		walSync = flag.String("wal-sync", "always", "WAL fsync policy with -wal: always, interval, off")

		replicas = flag.Int("replicas", 0, "WAL-shipped analytical read replicas (requires -wal; adds the replica reader class to the default mix)")
		maxLag   = flag.Uint64("max-replica-lag", 0, "freshness bound for replica-routed reads, in commit timestamps (0 = unbounded)")

		crashRecover = flag.Int("crash-recover", 0, "crash-injection mode: run this many SIGKILL+recover cycles against the -wal directory (temp dir if unset) and verify the oracles")

		// Internal flags for the crash-recover child process.
		crashChild    = flag.Bool("crash-child", false, "internal: run as the crash-recovery victim process")
		crashCycle    = flag.Int("crash-cycle", 0, "internal: kill-cycle number for -crash-child")
		crashProgress = flag.String("crash-progress", "", "internal: durable-commit progress file for -crash-child")
	)
	flag.Parse()

	if *crashChild {
		if err := runCrashChild(*walDir, *crashCycle, *crashProgress, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "vdmhtap (crash child):", err)
			os.Exit(1)
		}
		return
	}
	if *crashRecover > 0 {
		if err := runCrashRecover(*walDir, *crashRecover, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "vdmhtap:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*writers, *readers, *duration, *seed, *scale, *mixSpec,
		*ops, *det, *out, *schedule, *replay, *timeout, *memlimit, *maxq,
		*walDir, *walSync, *replicas, *maxLag); err != nil {
		fmt.Fprintln(os.Stderr, "vdmhtap:", err)
		os.Exit(1)
	}
}

func run(writers, readers int, duration time.Duration, seed int64, scale int,
	mixSpec string, ops int, det bool, out, schedule, replay string,
	timeout time.Duration, memlimit int64, maxq int,
	walDir, walSync string, replicas int, maxLag uint64) error {

	var (
		h   *htapbench.Harness
		log *htapbench.ScheduleLog
		err error
	)
	if replay != "" {
		data, rerr := os.ReadFile(replay)
		if rerr != nil {
			return rerr
		}
		log, err = htapbench.ParseScheduleLog(data)
		if err != nil {
			return err
		}
		cfg, cerr := htapbench.ConfigFromLog(log)
		if cerr != nil {
			return cerr
		}
		if log.Replicas > 0 {
			// The header records the fleet size but not a usable WAL
			// path; replay the replica ops against a throwaway one.
			tmp, terr := os.MkdirTemp("", "vdmhtap-replay-wal-")
			if terr != nil {
				return terr
			}
			defer os.RemoveAll(tmp)
			cfg.Engine.WALDir = tmp
			cfg.Engine.WALSync = wal.SyncOff
			cfg.Engine.Replicas = log.Replicas
		}
		fmt.Fprintf(os.Stderr, "vdmhtap: replaying %d ops (seed=%d writers=%d readers=%d scale=%d replicas=%d)\n",
			len(log.Entries), cfg.Seed, cfg.Writers, cfg.Readers, cfg.Scale, log.Replicas)
		h, err = htapbench.New(cfg)
		if err != nil {
			return err
		}
		defer h.Close()
		if err := h.Replay(context.Background(), log); err != nil {
			return err
		}
	} else {
		mix, merr := htapbench.ParseMix(mixSpec)
		if merr != nil {
			return merr
		}
		eng := htapbench.DefaultEngineOptions()
		eng.StatementTimeout = timeout
		eng.MemoryBudget = memlimit
		eng.MaxConcurrentQueries = maxq
		if walDir != "" {
			sp, perr := wal.ParseSyncPolicy(walSync)
			if perr != nil {
				return perr
			}
			eng.WALDir = walDir
			eng.WALSync = sp
			eng.CheckpointEvery = 1000
		}
		if replicas > 0 {
			if walDir == "" {
				return fmt.Errorf("-replicas requires -wal (replicas are WAL-shipped)")
			}
			eng.Replicas = replicas
			eng.MaxReplicaLag = maxLag
			// Give the replica reader class a default seat in the mix
			// unless the -mix spec took a position on it.
			if mix.Replica == 0 && !strings.Contains(mixSpec, "replica") {
				mix.Replica = 2
			}
		}
		cfg := htapbench.Config{
			Writers:       writers,
			Readers:       readers,
			Duration:      duration,
			Ops:           ops,
			Seed:          seed,
			Scale:         scale,
			Mix:           mix,
			Deterministic: det,
			Engine:        eng,
		}
		fmt.Fprintf(os.Stderr, "vdmhtap: loading fixture (scale=%d)\n", scale)
		h, err = htapbench.New(cfg)
		if err != nil {
			return err
		}
		defer h.Close()
		if replicas > 0 {
			fmt.Fprintf(os.Stderr, "vdmhtap: running %d writers + %d readers (seed=%d, %d replicas)\n",
				writers, readers, seed, replicas)
		} else {
			fmt.Fprintf(os.Stderr, "vdmhtap: running %d writers + %d readers (seed=%d)\n",
				writers, readers, seed)
		}
		log, err = h.Run(context.Background())
		if err != nil {
			return err
		}
	}

	if schedule != "" && log != nil {
		if err := os.WriteFile(schedule, log.Encode(), 0o644); err != nil {
			return err
		}
	}

	rep := h.Report()
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"vdmhtap: %d writer ops (%.0f/s), %d reader ops (%.0f/s), digest %s, %d violation(s) -> %s\n",
		rep.Totals.WriterOps, rep.Totals.WriterOpsPerSec,
		rep.Totals.ReaderOps, rep.Totals.ReaderOpsPerSec,
		rep.Invariants.Digest, rep.Invariants.Violations, out)
	if rep.Invariants.Violations > 0 {
		for _, v := range rep.Invariants.Details {
			fmt.Fprintln(os.Stderr, "  violation:", v)
		}
		return fmt.Errorf("%d invariant violation(s)", rep.Invariants.Violations)
	}
	return nil
}
