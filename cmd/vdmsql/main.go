// Command vdmsql is an interactive SQL shell over the engine.
//
// Usage:
//
//	vdmsql [-schema none|tpch|s4] [-profile hana|postgres|x|y|z|none] [-user NAME] [-f script.sql]
//
// Statements are ';'-terminated. Shell commands: \profile NAME,
// \explain QUERY, \raw QUERY, \analyze QUERY (EXPLAIN ANALYZE with
// per-operator rows and timings), \trace QUERY (optimizer rule trace),
// \stats QUERY, \metrics (engine/storage/plan-cache counters),
// \tables, \views, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"vdm/internal/core"
	"vdm/internal/engine"
	"vdm/internal/s4"
	"vdm/internal/tpch"
)

func profileByName(name string) (core.Profile, bool) {
	switch strings.ToLower(name) {
	case "hana":
		return core.ProfileHANA, true
	case "postgres", "pg":
		return core.ProfilePostgres, true
	case "x", "systemx":
		return core.ProfileSystemX, true
	case "y", "systemy":
		return core.ProfileSystemY, true
	case "z", "systemz":
		return core.ProfileSystemZ, true
	case "none", "off":
		return core.ProfileNone, true
	case "nocasejoin":
		return core.ProfileHANANoCaseJoin, true
	}
	return core.Profile{}, false
}

func main() {
	schema := flag.String("schema", "none", "preloaded schema: none, tpch, s4")
	profile := flag.String("profile", "hana", "optimizer profile")
	user := flag.String("user", "", "session user (for DAC policies)")
	script := flag.String("f", "", "script file to execute instead of the REPL")
	flag.Parse()

	e := engine.New()
	switch *schema {
	case "tpch":
		if err := tpch.Setup(e, tpch.TinyScale(), true); err != nil {
			fatal(err)
		}
	case "s4":
		if err := s4.Setup(e, s4.TinySize()); err != nil {
			fatal(err)
		}
	case "none":
	default:
		fatal(fmt.Errorf("unknown schema %q", *schema))
	}
	if p, ok := profileByName(*profile); ok {
		e.SetProfile(p)
	} else {
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range splitStatements(string(data)) {
			if err := execute(e, *user, stmt); err != nil {
				fatal(err)
			}
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("vdm> ")
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if handleMeta(e, user, trimmed) {
				return
			}
			fmt.Print("vdm> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if stmt != "" {
				if err := execute(e, *user, stmt); err != nil {
					fmt.Println("error:", err)
				}
			}
			fmt.Print("vdm> ")
		} else {
			fmt.Print("  -> ")
		}
	}
}

// handleMeta processes a backslash command; true means quit.
func handleMeta(e *engine.Engine, user *string, cmd string) bool {
	fields := strings.SplitN(cmd, " ", 2)
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\profile":
		if p, ok := profileByName(arg); ok {
			e.SetProfile(p)
			fmt.Println("profile:", p.Name)
		} else {
			fmt.Println("unknown profile:", arg)
		}
	case "\\user":
		*user = arg
		fmt.Println("user:", arg)
	case "\\explain":
		out, err := e.Explain(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\raw":
		out, err := e.ExplainRaw(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\analyze":
		out, err := e.ExplainAnalyze(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\trace":
		tr, err := e.TraceQuery(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(tr)
		}
	case "\\metrics":
		fmt.Print(e.Metrics())
	case "\\stats":
		raw, err1 := e.PlanStats(*user, arg, false)
		opt, err2 := e.PlanStats(*user, arg, true)
		if err1 != nil || err2 != nil {
			fmt.Println("error:", err1, err2)
		} else {
			fmt.Println("raw:      ", raw)
			fmt.Println("optimized:", opt)
		}
	case "\\tables":
		for _, t := range e.DB().TableNames() {
			fmt.Println(t)
		}
	case "\\views":
		for _, v := range e.Catalog().ViewNames() {
			fmt.Println(v)
		}
	default:
		fmt.Println("commands: \\profile NAME, \\user NAME, \\explain Q, \\raw Q, \\analyze Q, \\trace Q, \\stats Q, \\metrics, \\tables, \\views, \\quit")
	}
	return false
}

func execute(e *engine.Engine, user, stmt string) error {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN") || strings.HasPrefix(upper, "(") {
		res, err := e.QueryAs(user, stmt)
		if err != nil {
			return err
		}
		printResult(res)
		return nil
	}
	return e.Exec(stmt)
}

func printResult(res *engine.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[ri][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, c := range res.Columns {
		fmt.Printf("%-*s ", widths[i], c)
	}
	fmt.Println()
	for i := range res.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), " ")
	}
	fmt.Println()
	for _, row := range cells {
		for i, s := range row {
			fmt.Printf("%-*s ", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func splitStatements(script string) []string {
	var out []string
	for _, s := range strings.Split(script, ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vdmsql:", err)
	os.Exit(1)
}
