// Command vdmsql is an interactive SQL shell over the engine.
//
// Usage:
//
//	vdmsql [-schema none|tpch|s4] [-profile hana|postgres|x|y|z|none] [-user NAME] [-f script.sql]
//	       [-wal DIR] [-wal-sync always|interval|off]
//
// With -wal the session is durable: committed statements are logged to
// a write-ahead log under DIR and restored (checkpoint + log replay) on
// the next start with the same -wal.
//
// Statements are ';'-terminated. Shell commands: \profile NAME,
// \explain QUERY, \raw QUERY, \analyze QUERY (EXPLAIN ANALYZE with
// per-operator rows and timings), \trace QUERY (optimizer rule trace),
// \stats QUERY, \metrics (engine/storage/plan-cache counters),
// \set timeout DUR, \set memlimit BYTES, \set costing on|off (the
// statistics-driven pass: build-side selection, join reordering,
// est_rows annotations), \refresh (rebuild column statistics on every
// table), \tables, \views, \quit.
//
// While a statement runs, the first Ctrl-C cancels it (the shell stays
// up and reports the typed cancellation error); a second Ctrl-C exits
// the shell.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"vdm/internal/core"
	"vdm/internal/engine"
	"vdm/internal/s4"
	"vdm/internal/tpch"
	"vdm/internal/wal"
)

func profileByName(name string) (core.Profile, bool) {
	switch strings.ToLower(name) {
	case "hana":
		return core.ProfileHANA, true
	case "postgres", "pg":
		return core.ProfilePostgres, true
	case "x", "systemx":
		return core.ProfileSystemX, true
	case "y", "systemy":
		return core.ProfileSystemY, true
	case "z", "systemz":
		return core.ProfileSystemZ, true
	case "none", "off":
		return core.ProfileNone, true
	case "nocasejoin":
		return core.ProfileHANANoCaseJoin, true
	}
	return core.Profile{}, false
}

func main() {
	schema := flag.String("schema", "none", "preloaded schema: none, tpch, s4 (incl. the Figure-14 document pair)")
	profile := flag.String("profile", "hana", "optimizer profile")
	user := flag.String("user", "", "session user (for DAC policies)")
	script := flag.String("f", "", "script file to execute instead of the REPL")
	walDir := flag.String("wal", "", "durability directory: write-ahead log + checkpoints (empty = memory only)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always, interval, off")
	flag.Parse()

	var e *engine.Engine
	if *walDir != "" {
		sp, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fatal(err)
		}
		var oerr error
		e, oerr = engine.Open(engine.Options{WALDir: *walDir, WALSync: sp, CheckpointEvery: 1000})
		if oerr != nil {
			fatal(oerr)
		}
		defer e.Close()
		if info := e.Recovery(); info != nil && (info.Records > 0 || info.CheckpointTS > 0) {
			fmt.Fprintf(os.Stderr, "recovered %s: checkpoint ts %d, %d log records, clock %d (torn tail: %v) in %s\n",
				*walDir, info.CheckpointTS, info.Records, info.LastTS, info.TornTail, info.Duration)
		}
	} else {
		e = engine.New()
	}
	switch *schema {
	case "tpch":
		if err := tpch.Setup(e, tpch.TinyScale(), true); err != nil {
			fatal(err)
		}
	case "s4":
		if err := s4.Setup(e, s4.TinySize()); err != nil {
			fatal(err)
		}
		if err := s4.SetupFig14(e, s4.Fig14Tiny()); err != nil {
			fatal(err)
		}
	case "none":
	default:
		fatal(fmt.Errorf("unknown schema %q", *schema))
	}
	if p, ok := profileByName(*profile); ok {
		e.SetProfile(p)
	} else {
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		for _, stmt := range splitStatements(string(data)) {
			if err := execute(e, *user, stmt); err != nil {
				fatal(err)
			}
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("vdm> ")
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if handleMeta(e, user, trimmed) {
				return
			}
			fmt.Print("vdm> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
			buf.Reset()
			if stmt != "" {
				if err := execute(e, *user, stmt); err != nil {
					fmt.Println("error:", err)
				}
			}
			fmt.Print("vdm> ")
		} else {
			fmt.Print("  -> ")
		}
	}
}

// handleMeta processes a backslash command; true means quit.
func handleMeta(e *engine.Engine, user *string, cmd string) bool {
	fields := strings.SplitN(cmd, " ", 2)
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\profile":
		if p, ok := profileByName(arg); ok {
			e.SetProfile(p)
			fmt.Println("profile:", p.Name)
		} else {
			fmt.Println("unknown profile:", arg)
		}
	case "\\user":
		*user = arg
		fmt.Println("user:", arg)
	case "\\explain":
		out, err := e.Explain(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\raw":
		out, err := e.ExplainRaw(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\analyze":
		out, err := e.ExplainAnalyze(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(out)
		}
	case "\\trace":
		tr, err := e.TraceQuery(*user, arg)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(tr)
		}
	case "\\metrics":
		fmt.Print(e.Metrics())
	case "\\stats":
		raw, err1 := e.PlanStats(*user, arg, false)
		opt, err2 := e.PlanStats(*user, arg, true)
		if err1 != nil || err2 != nil {
			fmt.Println("error:", err1, err2)
		} else {
			fmt.Println("raw:      ", raw)
			fmt.Println("optimized:", opt)
		}
	case "\\set":
		handleSet(e, arg)
	case "\\refresh":
		for _, name := range e.DB().TableNames() {
			if t, ok := e.DB().Table(name); ok {
				t.RefreshStats()
			}
		}
		fmt.Println("statistics refreshed")
	case "\\tables":
		for _, t := range e.DB().TableNames() {
			fmt.Println(t)
		}
	case "\\views":
		for _, v := range e.Catalog().ViewNames() {
			fmt.Println(v)
		}
	default:
		fmt.Println("commands: \\profile NAME, \\user NAME, \\explain Q, \\raw Q, \\analyze Q, \\trace Q, \\stats Q, \\metrics, \\set timeout DUR, \\set memlimit BYTES, \\set costing on|off, \\refresh, \\tables, \\views, \\quit")
	}
	return false
}

// handleSet adjusts one governance option on the live engine, reading
// the current options first so the other knobs survive the round trip.
func handleSet(e *engine.Engine, arg string) {
	fields := strings.Fields(arg)
	if len(fields) != 2 {
		fmt.Println("usage: \\set timeout DURATION | \\set memlimit BYTES (0 = off) | \\set costing on|off")
		return
	}
	opts := e.Options()
	switch strings.ToLower(fields[0]) {
	case "costing":
		switch strings.ToLower(fields[1]) {
		case "on":
			e.EnableCosting(true)
		case "off":
			e.EnableCosting(false)
		default:
			fmt.Println("usage: \\set costing on|off")
			return
		}
		fmt.Println("costing:", strings.ToLower(fields[1]))
	case "timeout":
		d, err := time.ParseDuration(fields[1])
		if err != nil || d < 0 {
			fmt.Println("bad duration:", fields[1], "(try 500ms, 2s, 0)")
			return
		}
		opts.StatementTimeout = d
		e.SetOptions(opts)
		fmt.Println("statement timeout:", d)
	case "memlimit":
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n < 0 {
			fmt.Println("bad byte count:", fields[1])
			return
		}
		opts.MemoryBudget = n
		e.SetOptions(opts)
		fmt.Println("memory budget:", n, "bytes")
	default:
		fmt.Println("unknown setting:", fields[0], "(timeout, memlimit, costing)")
	}
}

func execute(e *engine.Engine, user, stmt string) error {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN") || strings.HasPrefix(upper, "(") {
		return runStatement(func(ctx context.Context) error {
			res, err := e.QueryAsContext(ctx, user, stmt)
			if err != nil {
				return err
			}
			printResult(res)
			return nil
		})
	}
	return e.Exec(stmt)
}

// runStatement executes fn under a context that the first Ctrl-C
// cancels — the engine aborts the statement with its typed ErrCancelled
// and the shell keeps running. A second Ctrl-C while the statement is
// still winding down exits the shell.
func runStatement(fn func(ctx context.Context) error) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-done:
			return
		case <-ctx.Done():
		}
		second := make(chan os.Signal, 1)
		signal.Notify(second, os.Interrupt)
		defer signal.Stop(second)
		select {
		case <-second:
			fmt.Fprintln(os.Stderr, "\nvdmsql: interrupted twice, exiting")
			os.Exit(130)
		case <-done:
		}
	}()
	return fn(ctx)
}

func printResult(res *engine.Result) {
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			cells[ri][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, c := range res.Columns {
		fmt.Printf("%-*s ", widths[i], c)
	}
	fmt.Println()
	for i := range res.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), " ")
	}
	fmt.Println()
	for _, row := range cells {
		for i, s := range row {
			fmt.Printf("%-*s ", widths[i], s)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func splitStatements(script string) []string {
	var out []string
	for _, s := range strings.Split(script, ";") {
		if strings.TrimSpace(s) != "" {
			out = append(out, s)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vdmsql:", err)
	os.Exit(1)
}
