package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"vdm/internal/engine"
	"vdm/internal/wal"
)

// walExperiment measures durable commit throughput: single-row insert
// commits per second on a memory-only engine versus WAL-backed engines
// under each sync policy. It quantifies the price of the durability
// subsystem exactly where it binds — the serialized commit-apply point
// now appends + fsyncs before acknowledging.
func walExperiment(dir string, commits int) (string, error) {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "vdmbench-wal-*")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
	}
	type cfg struct {
		name string
		open func(sub string) (*engine.Engine, func() error, error)
	}
	cfgs := []cfg{
		{"memory", func(string) (*engine.Engine, func() error, error) {
			e := engine.New()
			return e, e.Close, nil
		}},
	}
	for _, p := range []wal.SyncPolicy{wal.SyncOff, wal.SyncInterval, wal.SyncAlways} {
		p := p
		cfgs = append(cfgs, cfg{"wal-" + p.String(), func(sub string) (*engine.Engine, func() error, error) {
			e, err := engine.Open(engine.Options{WALDir: dir + "/" + sub, WALSync: p})
			if err != nil {
				return nil, nil, err
			}
			return e, e.Close, nil
		}})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== WAL commit throughput (%d single-row insert commits)\n", commits)
	fmt.Fprintf(&b, "%-14s %12s %14s\n", "config", "commits/s", "ns/commit")
	for i, c := range cfgs {
		e, closeFn, err := c.open(fmt.Sprintf("run%d", i))
		if err != nil {
			return "", err
		}
		if err := e.Exec("CREATE TABLE bench_wal (id INT PRIMARY KEY, v TEXT)"); err != nil {
			closeFn()
			return "", err
		}
		start := time.Now()
		for n := 0; n < commits; n++ {
			if err := e.Exec(fmt.Sprintf("INSERT INTO bench_wal VALUES (%d, 'payload-%d')", n, n)); err != nil {
				closeFn()
				return "", err
			}
		}
		elapsed := time.Since(start)
		if err := closeFn(); err != nil {
			return "", err
		}
		perSec := float64(commits) / elapsed.Seconds()
		fmt.Fprintf(&b, "%-14s %12.0f %14d\n", c.name, perSec, elapsed.Nanoseconds()/int64(commits))
	}
	return b.String(), nil
}
