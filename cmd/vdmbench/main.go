// Command vdmbench regenerates the paper's tables and figures: the
// Table 1–4 optimization status matrices, the Figure 3/4 plan censuses,
// the Figure 14 paging-query measurement, and the §7 SQL-extension
// demonstrations.
//
// Usage:
//
//	vdmbench [-exp all|t1|t2|t3|t4|f3|f4|f14|f14csv|ablate|s71|s72|s73] [-views N] [-reps N] [-big]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vdm/internal/engine"
	"vdm/internal/experiments"
	"vdm/internal/s4"
	"vdm/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: all, t1, t2, t3, t4, f3, f4, f14, f14csv, ablate, s71, s72, s73, wal")
	views := flag.Int("views", 100, "number of Figure 14 views to measure")
	reps := flag.Int("reps", 3, "timing repetitions per query")
	big := flag.Bool("big", false, "use benchmark-sized data volumes")
	timeout := flag.Duration("timeout", 0, "statement timeout per benchmark query (0 = none)")
	memlimit := flag.Int64("memlimit", 0, "per-query memory budget in bytes (0 = unlimited)")
	walDir := flag.String("wal", "", "directory for the 'wal' durability-throughput experiment (empty = temp dir)")
	walCommits := flag.Int("wal-commits", 2000, "commits per configuration in the 'wal' experiment")
	flag.Parse()
	gov := govOpts{timeout: *timeout, memlimit: *memlimit}
	if *exp == "wal" {
		out, err := walExperiment(*walDir, *walCommits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vdmbench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}
	if err := run(*exp, *views, *reps, *big, gov); err != nil {
		fmt.Fprintln(os.Stderr, "vdmbench:", err)
		os.Exit(1)
	}
}

// govOpts carries the optional governance bounds onto each engine the
// benchmark builds, so runaway experiment queries fail with typed
// errors instead of hanging or exhausting memory.
type govOpts struct {
	timeout  time.Duration
	memlimit int64
}

func (g govOpts) apply(e *engine.Engine) {
	if g.timeout <= 0 && g.memlimit <= 0 {
		return
	}
	opts := e.Options()
	opts.StatementTimeout = g.timeout
	opts.MemoryBudget = g.memlimit
	e.SetOptions(opts)
}

func run(exp string, views, reps int, big bool, gov govOpts) error {
	tpchScale := tpch.TinyScale()
	s4Size := s4.TinySize()
	f14Size := s4.Fig14Tiny()
	f14Size.Views = views
	if big {
		tpchScale = tpch.BenchScale()
		s4Size = s4.BenchSize()
		f14Size = s4.Fig14Full()
		f14Size.Views = views
	}

	needTPCH := map[string]bool{"all": true, "t1": true, "t2": true, "t3": true, "t4": true,
		"s71": true, "s72": true, "s73": true}
	needS4 := map[string]bool{"all": true, "f3": true, "f4": true, "f14": true, "f14csv": true, "ablate": true}

	var te *engine.Engine
	var err error
	if needTPCH[exp] {
		fmt.Fprintf(os.Stderr, "loading TPC-H data (%d orders)...\n", tpchScale.Orders)
		te, err = experiments.NewTPCHEngine(tpchScale)
		if err != nil {
			return err
		}
		gov.apply(te)
	}
	var se *engine.Engine
	if needS4[exp] {
		fmt.Fprintf(os.Stderr, "loading S/4HANA-like data (%d journal lines, %d views)...\n",
			s4Size.ACDOCARows, f14Size.Views)
		se, err = experiments.NewS4Engine(s4Size, f14Size)
		if err != nil {
			return err
		}
		gov.apply(se)
	}

	show := func(name string, fn func() (string, error)) error {
		if exp != "all" && exp != name {
			return nil
		}
		out, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		fmt.Println(out)
		return nil
	}
	matrix := func(fn func(*engine.Engine) (experiments.Matrix, error)) func() (string, error) {
		return func() (string, error) {
			m, err := fn(te)
			if err != nil {
				return "", err
			}
			return m.Format(), nil
		}
	}
	steps := []struct {
		name string
		fn   func() (string, error)
	}{
		{"t1", matrix(experiments.Table1)},
		{"t2", matrix(experiments.Table2)},
		{"t3", matrix(experiments.Table3)},
		{"t4", matrix(experiments.Table4)},
		{"f3", func() (string, error) { return experiments.Figure3Report(se) }},
		{"f4", func() (string, error) { return experiments.Figure4Report(se) }},
		{"f14", func() (string, error) { return experiments.Figure14Report(se, f14Size.Views, reps) }},
		{"f14csv", func() (string, error) { return experiments.Figure14CSV(se, f14Size.Views, reps) }},
		{"ablate", func() (string, error) { return experiments.AblationReport(se, reps) }},
		{"s71", func() (string, error) { return experiments.PrecisionLossReport(te) }},
		{"s72", func() (string, error) { return experiments.MacroReport(te) }},
		{"s73", func() (string, error) { return experiments.CardSpecReport(te) }},
	}
	for _, s := range steps {
		if (s.name == "f14csv" || s.name == "ablate") && exp != s.name {
			continue
		}
		if err := show(s.name, s.fn); err != nil {
			return err
		}
	}
	return nil
}
