// Package vdm is the public facade of the HTAP Virtual Data Model
// reproduction: an in-memory columnar SQL engine whose optimizer
// implements the query rewrites the paper identifies as essential for
// VDM workloads — unused augmentation join (UAJ) elimination,
// augmentation self-join (ASJ) elimination, limit pushdown across
// augmentation joins, Union All key derivation, the CASE JOIN
// declaration, join cardinality specifications, expression macros, and
// ALLOW_PRECISION_LOSS.
//
// Quick start:
//
//	db := vdm.NewEngine()
//	db.Exec(`create table t (id bigint primary key, name varchar)`)
//	db.Exec(`insert into t values (1, 'hello')`)
//	res, _ := db.Query(`select name from t`)
//
// The optimizer can be switched between the capability profiles of the
// five systems evaluated in the paper (Tables 1–4):
//
//	db.SetProfile(vdm.ProfilePostgres)
//	plan, _ := db.Explain("", "select ...")
package vdm

import (
	"vdm/internal/catalog"
	"vdm/internal/core"
	"vdm/internal/engine"
	"vdm/internal/metrics"
	"vdm/internal/plan"
	"vdm/internal/s4"
	"vdm/internal/sql"
	"vdm/internal/storage"
	"vdm/internal/tpch"
	"vdm/internal/vdm"
	"vdm/internal/wal"
)

// Engine is an in-memory HTAP database instance.
type Engine = engine.Engine

// Result is a materialized query result.
type Result = engine.Result

// Profile is an optimizer capability profile.
type Profile = core.Profile

// Capability is one optimizer capability bit.
type Capability = core.Capability

// PlanStats is an operator census of a query plan.
type PlanStats = plan.Stats

// Trace is the optimizer's structured rule trace — every rewrite fired
// (with join-count deltas) and every rule the profile skipped — as
// returned by Engine.TraceQuery.
type Trace = core.Trace

// TraceEvent is one rewrite recorded in a Trace.
type TraceEvent = core.TraceEvent

// MetricsSnapshot is a point-in-time snapshot of the engine, plan
// cache, cached view, and storage counters, as returned by
// Engine.Metrics.
type MetricsSnapshot = metrics.Snapshot

// Model is the VDM view-modeling layer (layers, associations, custom
// field extensions).
type Model = vdm.Model

// Association is a CDS-style association usable in path expressions.
type Association = vdm.Association

// ExtensionSpec describes a §5 custom-field extension.
type ExtensionSpec = vdm.ExtensionSpec

// UnionExtensionSpecT describes a §6.3 Active/Draft custom-field
// extension (named with a T suffix to avoid colliding with the
// constructor-style helpers).
type UnionExtensionSpecT = vdm.UnionExtensionSpec

// Layer classifies a VDM view (basic / composite / consumption).
type Layer = vdm.Layer

// View layers per the paper's Figure 2.
const (
	LayerBasic       = vdm.LayerBasic
	LayerComposite   = vdm.LayerComposite
	LayerConsumption = vdm.LayerConsumption
)

// DACPolicy is a record-wise data access control policy.
type DACPolicy = catalog.DACPolicy

// Optimizer profiles of the five systems evaluated in the paper's
// Tables 1–4, plus the two special profiles used by Figure 14.
var (
	ProfileHANA           = core.ProfileHANA
	ProfilePostgres       = core.ProfilePostgres
	ProfileSystemX        = core.ProfileSystemX
	ProfileSystemY        = core.ProfileSystemY
	ProfileSystemZ        = core.ProfileSystemZ
	ProfileNone           = core.ProfileNone
	ProfileHANANoCaseJoin = core.ProfileHANANoCaseJoin
)

// Typed query-lifecycle errors (match with errors.Is). A query that
// dies under governance — cancelled context, statement timeout, memory
// budget, recovered panic, or admission-queue timeout — returns an
// error wrapping exactly one of these.
var (
	ErrCancelled        = engine.ErrCancelled
	ErrTimeout          = engine.ErrTimeout
	ErrMemoryBudget     = engine.ErrMemoryBudget
	ErrInternal         = engine.ErrInternal
	ErrAdmissionTimeout = engine.ErrAdmissionTimeout
	// ErrTooDeep reports a statement nested beyond the parser's
	// recursion limit.
	ErrTooDeep = sql.ErrTooDeep
	// ErrWALFailed reports a write-ahead-log I/O failure: the commit was
	// rejected (and rolled back); reads keep serving. Transient fsync
	// errors clear after a backoff window.
	ErrWALFailed = wal.ErrWALFailed
)

// SyncPolicy selects when a durable engine fsyncs its write-ahead log.
type SyncPolicy = wal.SyncPolicy

// WAL sync policies: SyncAlways fsyncs before acknowledging each
// commit, SyncInterval group-commits on a background ticker, SyncOff
// leaves durability to the OS page cache.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncOff      = wal.SyncOff
)

// ParseSyncPolicy parses the CLI spelling of a sync policy ("always",
// "interval", "off").
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// RecoveryInfo summarizes what OpenEngine restored: checkpoint
// timestamp, replayed records, torn-tail truncation, and the wall time
// recovery took.
type RecoveryInfo = storage.RecoveryInfo

// Options configures an engine (parallelism, plan cache, and the
// query-governance knobs: StatementTimeout, MemoryBudget,
// MaxConcurrentQueries, QueueTimeout).
type Options = engine.Options

// NewEngine returns an empty engine with the full optimizer profile.
func NewEngine() *Engine { return engine.New() }

// NewEngineWithOptions returns an empty engine configured by o. It
// panics if o requests durability (Options.WALDir) and the log cannot
// be opened; use OpenEngine to handle that error.
func NewEngineWithOptions(o Options) *Engine { return engine.NewWithOptions(o) }

// OpenEngine opens a durable engine rooted at o.WALDir: it restores the
// latest checkpoint, replays the WAL tail (truncating a torn final
// record), and resumes the commit clock at the last durable timestamp.
// Engine.Recovery reports what was restored. With an empty WALDir it
// behaves exactly like NewEngineWithOptions.
func OpenEngine(o Options) (*Engine, error) { return engine.Open(o) }

// NewModel returns the VDM modeling layer over an engine.
func NewModel(e *Engine) *Model { return vdm.NewModel(e) }

// TPCHScale configures the TPC-H generator.
type TPCHScale = tpch.Scale

// NewTPCHEngine returns an engine loaded with the TPC-H-style schema
// and deterministic data (with foreign-key metadata).
func NewTPCHEngine(sc TPCHScale) (*Engine, error) {
	e := engine.New()
	if err := tpch.Setup(e, sc, true); err != nil {
		return nil, err
	}
	return e, nil
}

// TPCHTiny is a unit-test-sized TPC-H scale.
func TPCHTiny() TPCHScale { return tpch.TinyScale() }

// TPCHBench is a benchmark-sized TPC-H scale.
func TPCHBench() TPCHScale { return tpch.BenchScale() }

// S4Size configures the synthetic S/4HANA generator.
type S4Size = s4.Size

// NewS4Engine returns an engine loaded with the synthetic S/4HANA
// schema, data, and the full VDM stack (JournalEntryItemBrowser, DAC).
func NewS4Engine(sz S4Size) (*Engine, error) {
	e := engine.New()
	if err := s4.Setup(e, sz); err != nil {
		return nil, err
	}
	return e, nil
}

// S4Tiny is a unit-test-sized S/4HANA volume.
func S4Tiny() S4Size { return s4.TinySize() }

// S4Bench is a benchmark-sized S/4HANA volume.
func S4Bench() S4Size { return s4.BenchSize() }
