package vdm

import (
	"strings"
	"testing"
)

// The public facade in one pass: engines, profiles, modeling, the VDM
// extension mechanism, and the workload constructors.
func TestPublicFacade(t *testing.T) {
	db := NewEngine()
	if err := db.ExecScript(`
		create table inv_active (id bigint primary key, amount decimal(10,2), zz_tag varchar);
		create table inv_draft  (id bigint primary key, amount decimal(10,2), zz_tag varchar);
		insert into inv_active values (1, 10.00, 'x'), (2, 20.00, 'y');
		insert into inv_draft values (10, 1.00, 'd');
	`); err != nil {
		t.Fatal(err)
	}
	model := NewModel(db)
	if err := model.Deploy(LayerConsumption, "C_Inv", `
		select 1 bid, id, amount from inv_active
		union all
		select 2 bid, id, amount from inv_draft`); err != nil {
		t.Fatal(err)
	}
	if err := model.ExtendUnionWithCustomField(UnionExtensionSpecT{
		View: "C_Inv", ActiveTable: "inv_active", DraftTable: "inv_draft",
		KeyCols: []string{"id"}, ViewBidCol: "bid", ViewKeyCols: []string{"id"},
		ActiveBid: 1, DraftBid: 2, Field: "zz_tag", UseCaseJoin: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`select bid, id, zz_tag from C_Inv order by bid, id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][2].Str() != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
	stats, err := db.PlanStats("", `select * from C_Inv limit 1`, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Joins != 0 {
		t.Fatalf("case-join extension not eliminated: %+v", stats)
	}

	// Profile switching through the facade.
	for _, p := range []Profile{ProfileHANA, ProfilePostgres, ProfileSystemX,
		ProfileSystemY, ProfileSystemZ, ProfileNone, ProfileHANANoCaseJoin} {
		db.SetProfile(p)
		if _, err := db.Query(`select count(*) from C_Inv`); err != nil {
			t.Fatalf("profile %s: %v", p.Name, err)
		}
	}
}

func TestWorkloadConstructors(t *testing.T) {
	te, err := NewTPCHEngine(TPCHTiny())
	if err != nil {
		t.Fatal(err)
	}
	r, err := te.Query(`select count(*) from orders`)
	if err != nil || r.Rows[0][0].Int() == 0 {
		t.Fatalf("tpch: %v %v", err, r)
	}
	se, err := NewS4Engine(S4Tiny())
	if err != nil {
		t.Fatal(err)
	}
	r, err = se.QueryAs("u", `select count(*) from JournalEntryItemBrowser`)
	if err != nil || r.Rows[0][0].Int() == 0 {
		t.Fatalf("s4: %v %v", err, r)
	}
	if TPCHBench().Orders <= TPCHTiny().Orders || S4Bench().ACDOCARows <= S4Tiny().ACDOCARows {
		t.Fatal("bench scales should exceed tiny scales")
	}
}

// The observability surface through the facade: EXPLAIN ANALYZE
// annotations, the structured rule trace, and the metrics snapshot.
func TestFacadeObservability(t *testing.T) {
	db := NewEngine()
	if err := db.ExecScript(`
		create table evt (id bigint primary key, kind varchar not null, n bigint);
		insert into evt values (1, 'a', 10), (2, 'b', 20), (3, 'a', 30);
		create view EvtBrowser as
			select e.id, e.n, k.kind other_kind
			from evt e left outer join evt k on e.id = k.id;
	`); err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainAnalyze("", `select count(*) from EvtBrowser`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows=3") || !strings.Contains(out, "time=") {
		t.Fatalf("analyze output:\n%s", out)
	}
	var tr *Trace
	if tr, err = db.TraceQuery("", `select id, n from EvtBrowser`); err != nil {
		t.Fatal(err)
	}
	if !tr.Fired("asj-elim") || tr.After.Joins != 0 {
		t.Fatalf("trace:\n%s", tr)
	}
	if _, err := db.Query(`select count(*) from EvtBrowser`); err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot = db.Metrics()
	if v, ok := snap.Get("engine.queries"); !ok || v < 1 {
		t.Fatalf("metrics:\n%s", snap)
	}
}
