// Custom-field extension (§5): a customer adds a field to a managed
// table; the consumption view is redefined through an augmentation
// self-join so interim views stay untouched; the optimizer removes the
// self-join so the extension is free. The draft-table variant (§6.3)
// needs the CASE JOIN declaration.
package main

import (
	"fmt"
	"log"

	vdm "vdm"
)

func main() {
	db := vdm.NewEngine()
	model := vdm.NewModel(db)

	must(db.ExecScript(`
		create table invoice_active (
			id bigint primary key, amount decimal(10,2), status varchar,
			zz_region varchar  -- the customer's extension field
		);
		create table invoice_draft (
			id bigint primary key, amount decimal(10,2), status varchar,
			zz_region varchar
		);
		insert into invoice_active values
			(1, 100.00, 'PAID', 'EMEA'), (2, 250.00, 'OPEN', 'APJ'), (3, 75.50, 'PAID', 'AMER');
		insert into invoice_draft values (100, 10.00, 'DRAFT', 'EMEA');
	`))

	// The SAP-managed consumption view over the Active/Draft union
	// (Figure 11b). It does not expose zz_region.
	must(model.Deploy(2, "C_Invoice", `
		select 1 bid, id, amount, status from invoice_active
		union all
		select 2 bid, id, amount, status from invoice_draft`))

	// Extend it per Figure 13b without redefining anything in between.
	must(model.ExtendUnionWithCustomField(vdm.UnionExtensionSpecT{
		View:        "C_Invoice",
		ActiveTable: "invoice_active",
		DraftTable:  "invoice_draft",
		KeyCols:     []string{"id"},
		ViewBidCol:  "bid",
		ViewKeyCols: []string{"id"},
		ActiveBid:   1,
		DraftBid:    2,
		Field:       "zz_region",
		UseCaseJoin: true, // declare the ASJ intent (§6.3)
	}))

	res, err := db.Query(`select bid, id, amount, zz_region from C_Invoice order by bid, id`)
	must(err)
	fmt.Println("extended view rows:")
	for _, r := range res.Rows {
		fmt.Printf("  bid=%s id=%s amount=%s region=%s\n", r[0], r[1], r[2], r[3])
	}

	// The declared ASJ is optimized away: the paging query reads the
	// union once, with no self-join.
	stats, err := db.PlanStats("", "select * from C_Invoice limit 10", true)
	must(err)
	fmt.Printf("\npaging query plan: %d joins (the extension self-join was eliminated)\n", stats.Joins)

	raw, err := db.PlanStats("", "select * from C_Invoice limit 10", false)
	must(err)
	fmt.Printf("unoptimized plan had %d joins over %d table instances\n", raw.Joins, raw.TableInstances)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
