// Fulfillment-issue analytics: the paper's SalesOrderFulfillmentIssue
// motif (§1) — a consumption view combining sales, delivery, and
// billing "for identifying fulfillment anomalies", queried in real time
// on transactional data. Narrow questions prune the processes they
// don't touch.
package main

import (
	"fmt"
	"log"

	vdm "vdm"
	"vdm/internal/s4"
)

func main() {
	db, err := vdm.NewS4Engine(vdm.S4Tiny())
	must(err)
	must(s4.SetupFulfillment(db, s4.FulfillmentTiny()))

	// The anomaly dashboard: one view, three business processes.
	res, err := db.Query(`
		select delivery_status, billing_status, count(*) items, sum(order_value) value
		from SalesOrderFulfillmentIssue
		group by delivery_status, billing_status
		order by delivery_status, billing_status`)
	must(err)
	fmt.Println("fulfillment status matrix:")
	for _, r := range res.Rows {
		fmt.Printf("  %-14s %-16s items=%-4s value=%s\n", r[0], r[1], r[2], r[3])
	}

	// Revenue at risk: delivered but never billed.
	res, err = db.Query(`
		select customer_name, sum(order_value) at_risk
		from SalesOrderFulfillmentIssue
		where billing_status = 'UNBILLED' and delivery_status <> 'NOT_DELIVERED'
		group by customer_name order by at_risk desc limit 5`)
	must(err)
	fmt.Println("\ntop revenue at risk (delivered, unbilled):")
	for _, r := range res.Rows {
		fmt.Printf("  %-24s %s\n", r[0], r[1])
	}

	// A delivery-only question needs neither billing nor customer joins.
	q := `select vbeln, posnr, delivery_status from SalesOrderFulfillmentIssue`
	raw, err := db.PlanStats("", q, false)
	must(err)
	opt, err := db.PlanStats("", q, true)
	must(err)
	fmt.Printf("\ndelivery-only question: joins %d raw -> %d optimized (billing & customer pruned)\n",
		raw.Joins, opt.Joins)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
