// JournalEntryItemBrowser walkthrough: the paper's motivating example
// (§3). Deploys the synthetic S/4HANA schema and VDM stack, shows the
// Figure 3 plan census, the Figure 4 optimized count(*), DAC in action,
// and an embedded-analytics query running straight on the transactional
// journal.
package main

import (
	"fmt"
	"log"

	vdm "vdm"
	"vdm/internal/s4"
)

func main() {
	db, err := vdm.NewS4Engine(vdm.S4Tiny())
	must(err)

	// Figure 3: the raw complexity of `select * from JournalEntryItemBrowser`.
	census, err := s4.Figure3(db)
	must(err)
	fmt.Println("Figure 3 — unoptimized plan census:")
	fmt.Printf("  shared:   %d table instances, %d joins, one %d-way union all, %d group by, %d distinct\n",
		census.Shared.TableInstances, census.Shared.Joins,
		census.Shared.UnionAllChildren, census.Shared.GroupBys, census.Shared.Distincts)
	fmt.Printf("  unshared: %d table instances\n\n", census.Tree.TableInstances)

	// Figure 4: the optimizer reduces count(*) to ACDOCA plus the two
	// DAC-protected joins.
	stats, err := s4.Figure4(db)
	must(err)
	fmt.Printf("Figure 4 — optimized count(*): %d tables, %d joins\n\n", stats.TableInstances, stats.Joins)

	// The same query still returns real numbers, under access control.
	res, err := db.QueryAs("analyst", "select count(*) from JournalEntryItemBrowser")
	must(err)
	fmt.Printf("journal entry items visible to 'analyst': %s\n\n", res.Rows[0][0])

	// Embedded analytics on transactional data: ledger totals by company
	// and document type, no ETL, one view.
	res, err = db.QueryAs("analyst", `
		select rbukrs, blart, count(*) items, sum(hsl) total
		from JournalEntryItemBrowser
		group by rbukrs, blart
		order by rbukrs, blart
		limit 8`)
	must(err)
	fmt.Println("ledger totals by company and doc type:")
	for _, r := range res.Rows {
		fmt.Printf("  company %s doc %s items %-4s total %s\n", r[0], r[1], r[2], r[3])
	}

	// How much work did the optimizer save for that analytic query?
	raw, err := db.PlanStats("analyst", "select rbukrs, sum(hsl) from JournalEntryItemBrowser group by rbukrs", false)
	must(err)
	opt, err := db.PlanStats("analyst", "select rbukrs, sum(hsl) from JournalEntryItemBrowser group by rbukrs", true)
	must(err)
	fmt.Printf("\nanalytic rollup plan: %d joins raw -> %d joins optimized\n", raw.Joins, opt.Joins)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
