// Quickstart: create tables, deploy a reusable wide view the VDM way,
// and watch the optimizer strip the unused augmentation joins for each
// individual query.
package main

import (
	"fmt"
	"log"

	vdm "vdm"
)

func main() {
	db := vdm.NewEngine()

	// Transactional schema: orders with several master-data dimensions.
	must(db.ExecScript(`
		create table customers (id bigint primary key, name varchar not null, country varchar);
		create table products  (id bigint primary key, name varchar not null, price decimal(10,2));
		create table clerks    (id bigint primary key, name varchar not null);
		create table orders (
			id bigint primary key,
			customer_id bigint not null,
			product_id bigint not null,
			clerk_id bigint,
			qty bigint,
			amount decimal(10,2)
		);
		insert into customers values (1,'Acme','DE'), (2,'Globex','US'), (3,'Initech','KR');
		insert into products values (10,'bolt',1.25), (11,'nut',0.75), (12,'gear',12.50);
		insert into clerks values (100,'kim'), (101,'lee');
		insert into orders values
			(1000,1,10,100,5,6.25), (1001,1,11,101,8,6.00),
			(1002,2,12,100,1,12.50), (1003,3,10,null,2,2.50);
	`))

	// A VDM-style expansive view: every dimension pre-joined so any
	// business question can be asked against one view.
	must(db.Exec(`
		create view OrderBrowser as
		select o.id order_id, o.qty, o.amount,
		       c.name customer_name, c.country customer_country,
		       p.name product_name, p.price list_price,
		       k.name clerk_name
		from orders o
		left outer join customers c on o.customer_id = c.id
		left outer join products  p on o.product_id  = p.id
		left outer join clerks    k on o.clerk_id    = k.id`))

	// A narrow query touches one dimension; the other joins are unused
	// augmentation joins and vanish from the plan.
	q := `select order_id, customer_name from OrderBrowser where amount > 5.00`
	res, err := db.Query(q)
	must(err)
	fmt.Println("rows:")
	for _, row := range res.Rows {
		fmt.Printf("  order %s by %s\n", row[0], row[1])
	}

	optimized, err := db.Explain("", q)
	must(err)
	fmt.Println("\noptimized plan (1 join left out of 3):")
	fmt.Print(optimized)

	stats, err := db.PlanStats("", q, true)
	must(err)
	rawStats, err := db.PlanStats("", q, false)
	must(err)
	fmt.Printf("\njoins: %d raw -> %d optimized\n", rawStats.Joins, stats.Joins)

	// Under a weaker optimizer profile the joins stay.
	db.SetProfile(vdm.ProfileSystemX)
	weak, err := db.PlanStats("", q, true)
	must(err)
	fmt.Printf("under %s: %d joins remain\n", vdm.ProfileSystemX.Name, weak.Joins)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
