// Sales analytics over the TPC-H-style schema: expression macros
// (§7.2) for reusable aggregate formulas, ALLOW_PRECISION_LOSS (§7.1)
// for aggregation across decimal rounding, and cardinality
// specifications (§7.3) with the verification tool.
package main

import (
	"fmt"
	"log"

	vdm "vdm"
)

func main() {
	db, err := vdm.NewTPCHEngine(vdm.TPCHTiny())
	must(err)

	// §7.2: define the margin formula once, on the view.
	must(db.Exec(`
		create view vSales as
		select l_orderkey, l_suppkey, l_extendedprice, l_discount, ps_supplycost
		from lineitem inner join partsupp
		  on l_partkey = ps_partkey and l_suppkey = ps_suppkey
		with expression macros (
			1 - sum(ps_supplycost) / sum(l_extendedprice * (1 - l_discount)) as margin,
			sum(l_extendedprice * (1 - l_discount)) as revenue
		)`))

	res, err := db.Query(`
		select l_suppkey, expression_macro(revenue) revenue, expression_macro(margin) margin
		from vSales group by l_suppkey order by revenue desc limit 5`)
	must(err)
	fmt.Println("top suppliers by revenue (margin via expression macro):")
	for _, r := range res.Rows {
		fmt.Printf("  supplier %-4s revenue %-12s margin %s\n", r[0], r[1], r[2])
	}

	// §7.1: allow the rounding/addition interchange per query.
	exact, err := db.Query(`
		select sum(round(l_extendedprice * 1.11, 2)) from lineitem`)
	must(err)
	apl, err := db.Query(`
		select allow_precision_loss(sum(round(l_extendedprice * 1.11, 2))) from lineitem`)
	must(err)
	fmt.Printf("\ntaxed total, exact:               %s\n", exact.Rows[0][0])
	fmt.Printf("taxed total, allow_precision_loss: %s (trailing digits may differ)\n", apl.Rows[0][0])

	// §7.3: a declared cardinality replaces a missing constraint and the
	// verifier checks it against the data.
	spec := `select l_orderkey from lineitem
	         left outer many to one join supplier on l_suppkey = s_suppkey`
	violations, err := db.VerifyCardinalities("", spec)
	must(err)
	fmt.Printf("\ncardinality check of declared MANY TO ONE join: %d violations\n", len(violations))

	stats, err := db.PlanStats("", spec, true)
	must(err)
	fmt.Printf("joins left after UAJ elimination via the spec: %d\n", stats.Joins)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
